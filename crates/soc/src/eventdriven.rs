//! Event-driven co-simulation of the N-core SoC — byte-identical to the
//! lock-step engine, orders of magnitude faster.
//!
//! # Why jumping is sound
//!
//! The lock-step engine ([`crate::lockstep`]) walks a global clock one
//! cycle at a time so it can arbitrate the shared single-ported L2.
//! But its own arbitration rule makes that walk unnecessary:
//!
//! * A core that *loses* the L2 port replays nothing — the conflict is
//!   counted (`soc.l2_conflict_cycles`, a `stall.l2_conflict` event) but
//!   the loser's timing is unchanged. The `stalled_until` the lock-step
//!   scheduler writes on a conflict is dead for active cores (it is
//!   only consulted between items, and reset at item completion).
//! * Cores share no other cycle-level state: item programs keep data in
//!   core-local banks and only *write* one result word through to their
//!   private L2 mailbox. (The engine verifies the no-L2-read part at
//!   run time rather than trusting it; see below.)
//!
//! So cross-core coupling reduces to (a) the order DMA staging
//! transfers are booked in and (b) which same-cycle L2 touches count as
//! conflicts. Both are replicated exactly without a global cycle walk:
//!
//! * Each core posts its next wakeup (item start, DMA delivery) into a
//!   deterministic [`EventQueue`] ordered by `(cycle, core)` — the same
//!   order the lock-step per-cycle core walk books DMA transfers in.
//! * Each item executes atomically via [`NcpuCore::run`] (proven
//!   byte-identical to the `step_one` walk by the core's own tests),
//!   with the core's L2 touch log recording which cycles touched the
//!   port. Arbitration is resolved *post hoc*: collect every touch,
//!   sort, and charge every same-cycle toucher except the
//!   lowest-numbered core — exactly the lock-step priority rule.
//! * Event/span emission into the root recorder is deferred and sorted
//!   by `(cycle, core, stall-before-absorb)`, reproducing the raw
//!   emission order (and capacity-drop behavior) of the per-cycle walk.
//!
//! # Steady-state replay
//!
//! Items on one core are usually identical: same program, same staged
//! bytes, same architectural starting state. The engine memoizes each
//! simulated item keyed by its full [`ReplayState`] (registers,
//! transition neurons, bank contents — compared byte for byte, no
//! hashing) and *replays* matches: counters advance by the recorded
//! deltas, the end state is restored, the recorded events and L2
//! touches are re-based onto the new start cycle. Determinism makes
//! this exact. The one escape hatch: a program that *reads* the shared
//! L2 could observe content a skipped re-execution did not write, so an
//! item whose simulation performed any L2 read is never cached — and if
//! one shows up after a replay already happened, the whole run restarts
//! with memoization off. Fabric-generated programs never read the L2,
//! so the restart exists for soundness, not for the paper's workloads.

use ncpu_core::{BankPorts, NcpuCore, ReplayDelta, ReplayState, SharedL2};
use ncpu_fault::FaultPlan;
use ncpu_obs::{EventKind, Recorder, StallCause, TraceLevel};
use ncpu_pipeline::PipeStats;

use crate::event_queue::EventQueue;
use crate::fabric;
use crate::report::RunReport;
use crate::system::SocConfig;
use crate::topology::Topology;
use crate::usecase::UseCase;

/// Result of an event-driven run, plus contention statistics.
#[derive(Debug, Clone)]
pub struct EventReport {
    /// The standard run report (per-core utilization, predictions…).
    pub report: RunReport,
    /// Cycles a core would have replayed because the L2 port was taken —
    /// identical to the lock-step engine's count by construction.
    pub l2_conflict_cycles: u64,
    /// Items served from the replay cache instead of being simulated
    /// (engine instrumentation; not part of the report counters).
    pub replayed_items: usize,
}

/// Runs `usecase` on `cores` event-driven NCPU cores.
///
/// # Panics
///
/// Panics if a generated program faults (a workspace bug) or the run
/// exceeds an internal cycle bound.
pub fn run_ncpu_event(usecase: &UseCase, cores: usize, soc: &SocConfig) -> EventReport {
    run_ncpu_event_traced(usecase, cores, soc, TraceLevel::Counters).0
}

/// Like [`run_ncpu_event`], but also returns the root [`Recorder`] —
/// byte-identical (events, spans, counters) to
/// [`crate::lockstep::run_ncpu_lockstep_traced`] on the same inputs,
/// except for the engine name in the report's `config`.
///
/// # Panics
///
/// Panics if a generated program faults (a workspace bug) or the run
/// exceeds an internal cycle bound.
pub fn run_ncpu_event_traced(
    usecase: &UseCase,
    cores: usize,
    soc: &SocConfig,
    level: TraceLevel,
) -> (EventReport, Recorder) {
    run_ncpu_event_faulted(usecase, cores, soc, level, &FaultPlan::none(), 1000)
}

/// Like [`run_ncpu_event_traced`], but with a [`FaultPlan`] bound to an
/// operating point (`millivolts` scales the SRAM soft-error rate).
///
/// An inert plan ([`FaultPlan::none`]) takes the exact pre-fault code
/// path. An active plan resolves every dispatch through
/// `fabric::resolve_dispatch` at the same `(cycle, core)` slots the
/// lock-step engine does, so reports, counters and raw trace streams
/// stay byte-identical — with one exception the engine cannot simulate:
/// a *mid-item* watchdog expiry. Items execute atomically here, so when
/// any item overruns the plan's watchdog budget the whole run restarts
/// on the lock-step engine (the generalization of the memo-unsoundness
/// restart), which aborts the item for real; only the engine name in
/// the report's `config` betrays the fallback.
///
/// # Panics
///
/// Panics if a generated program faults (a workspace bug) or the run
/// exceeds an internal cycle bound.
pub fn run_ncpu_event_faulted(
    usecase: &UseCase,
    cores: usize,
    soc: &SocConfig,
    level: TraceLevel,
    plan: &FaultPlan,
    millivolts: u32,
) -> (EventReport, Recorder) {
    run_ncpu_event_topo(usecase, &Topology::homogeneous(cores), soc, level, plan, millivolts)
}

/// Like [`run_ncpu_event_faulted`], but over an explicit [`Topology`]:
/// item dispatch follows the topology's scheduler plan, fixed-function
/// cores sit idle, and L2 arbitration is per bank. With
/// [`Topology::homogeneous`] this is byte-identical to the historical
/// `cores`-only entry point.
///
/// # Panics
///
/// Panics if a generated program faults (a workspace bug), the run
/// exceeds an internal cycle bound, or the topology has no item-capable
/// core.
pub fn run_ncpu_event_topo(
    usecase: &UseCase,
    topo: &Topology,
    soc: &SocConfig,
    level: TraceLevel,
    plan: &FaultPlan,
    millivolts: u32,
) -> (EventReport, Recorder) {
    match run_attempt(usecase, topo, soc, level, true, plan, millivolts) {
        Ok(result) => result,
        // An item read the shared L2 after a replay already skipped a
        // write: replay is unsound for this workload, simulate all items.
        Err(Restart::MemoUnsound) => {
            match run_attempt(usecase, topo, soc, level, false, plan, millivolts) {
                Ok(result) => result,
                Err(Restart::MemoUnsound) => {
                    unreachable!("memoization disabled: nothing to invalidate")
                }
                Err(Restart::Watchdog) => {
                    lockstep_fallback(usecase, topo, soc, level, plan, millivolts)
                }
            }
        }
        Err(Restart::Watchdog) => lockstep_fallback(usecase, topo, soc, level, plan, millivolts),
    }
}

/// An item overran the fault plan's watchdog: atomic item execution
/// cannot abort mid-item, so the run re-executes on the lock-step
/// engine, which can. Byte-identical by definition — it *is* the
/// lock-step run, relabeled.
fn lockstep_fallback(
    usecase: &UseCase,
    topo: &Topology,
    soc: &SocConfig,
    level: TraceLevel,
    plan: &FaultPlan,
    millivolts: u32,
) -> (EventReport, Recorder) {
    let (ls, rec) =
        crate::lockstep::run_ncpu_lockstep_topo(usecase, topo, soc, level, plan, millivolts);
    let mut report = ls.report;
    report.config = report.config.replace("(lockstep)", "(event)");
    (
        EventReport {
            report,
            l2_conflict_cycles: ls.l2_conflict_cycles,
            replayed_items: 0,
        },
        rec,
    )
}

/// The run must start over on a different strategy.
enum Restart {
    /// Replay would be unsound: restart without the cache.
    MemoUnsound,
    /// An item overran the watchdog budget mid-execution: restart on
    /// the lock-step engine, which can abort mid-item.
    Watchdog,
}

/// One memoized item execution.
struct Cached {
    staged: Vec<u8>,
    /// Memo key of the [`crate::topology::CoreSpec`] the item ran under.
    /// The cache is per-core, so this is constant within one run — it
    /// exists so a replay can never cross core specs if the cache is
    /// ever shared or a spec ever changes mid-run.
    spec_key: u64,
    pre: ReplayState,
    used: u64,
    delta: ReplayDelta,
    /// `None` when the item ends in exactly its starting state (the
    /// steady-state common case) — restoring is then a no-op.
    post: Option<ReplayState>,
    /// The item's events/spans, cycles re-based to the item start.
    shard: Recorder,
    /// L2 touch cycles relative to the item start (1-based: a touch at
    /// `rel` happened during global cycle `start + rel - 1`).
    touches_rel: Vec<u64>,
    prediction: usize,
}

/// A deferred recorder operation, replayed in lock-step emission order.
enum Emission {
    /// The fault layer's injection/detection/recovery instants resolved
    /// at one dispatch slot. The lock-step walk emits them in its
    /// dispatch phase, before stepping the core — so they sort before
    /// any same-slot stall or absorb.
    Fault { cycle: u64, core: u16, events: Vec<(u64, EventKind)> },
    /// `stall.l2_conflict` instant for a core that lost the L2 port.
    Stall { cycle: u64, core: u16 },
    /// An item's drained shard, absorbed with the given cycle offset.
    /// Ordered at the item's halt cycle, after any same-cycle stall.
    Absorb { cycle: u64, core: u16, shard: Recorder, offset: i64 },
}

impl Emission {
    fn key(&self) -> (u64, u16, u8) {
        match self {
            Emission::Fault { cycle, core, .. } => (*cycle, *core, 0),
            Emission::Stall { cycle, core } => (*cycle, *core, 1),
            Emission::Absorb { cycle, core, .. } => (*cycle, *core, 2),
        }
    }
}

struct CoreRun {
    core: NcpuCore,
    program: Vec<u32>,
    /// Items assigned to this core: `(item index, available_from)` —
    /// plan-assigned items are available from cycle 0; items
    /// re-scheduled off a quarantined core from the cycle after the
    /// quarantine decision. Mirrors the lock-step queue exactly.
    queue: Vec<(usize, u64)>,
    /// Position within `queue`.
    at: usize,
    /// The pending wakeup begins the staged item (banks already loaded)
    /// rather than attempting the next item start.
    pending_exec: bool,
    /// Cycle the scheduler first attempted the current item (before any
    /// DMA staging sleep) — the latency clock start, matching the
    /// lock-step engine's first-attempt cycle.
    dispatch: u64,
    /// Items waiting behind the current one, captured at dispatch (a
    /// quarantined peer can push onto this queue mid-item; dispatch is
    /// the one point both simulating engines observe the same queue).
    depth: u64,
    busy: u64,
    finished_at: u64,
    predictions: Vec<(usize, usize)>,
    cache: Vec<Cached>,
}

fn run_attempt(
    usecase: &UseCase,
    topo: &Topology,
    soc: &SocConfig,
    level: TraceLevel,
    mut memoize: bool,
    plan: &FaultPlan,
    millivolts: u32,
) -> Result<(EventReport, Recorder), Restart> {
    let cores = topo.cores();
    assert!(cores >= 1, "need at least one core");
    let mut rec = Recorder::new(level.at_least_counters());
    let l2 = SharedL2::new(fabric::L2_BYTES);
    let mut dma = fabric::new_dma(soc, level);
    let mut ctl = plan
        .is_active()
        .then(|| fabric::FaultCtl::new(plan, millivolts, usecase.items().len(), topo));
    let watchdog = ctl.as_ref().map_or(0, |ctl| ctl.watchdog());
    let dispatch_plan = topo.plan(usecase, soc);
    let mut states: Vec<CoreRun> = (0..cores)
        .map(|c| {
            let mut core = fabric::ncpu_core(usecase, soc, level, l2.clone());
            core.set_l2_touch_log(true);
            let program = fabric::ncpu_program(usecase, &core, fabric::result_addr(c));
            CoreRun {
                core,
                program,
                queue: (0..usecase.items().len())
                    .filter(|&i| dispatch_plan[i] == c)
                    .map(|i| (i, 0))
                    .collect(),
                at: 0,
                pending_exec: false,
                dispatch: 0,
                depth: 0,
                busy: 0,
                finished_at: 0,
                predictions: Vec::new(),
                cache: Vec::new(),
            }
        })
        .collect();

    let mut queue = EventQueue::new(cores);
    for (c, st) in states.iter().enumerate() {
        if !st.queue.is_empty() {
            queue.arm(c as u16, 0);
        }
    }

    let mut emissions: Vec<Emission> = Vec::new();
    let mut touches: Vec<(u64, u16)> = Vec::new();
    let mut replayed = 0usize;
    let budget = 2_000_000_000u64;
    'pop: while let Some((now, c)) = queue.pop() {
        assert!(now < budget, "event-driven run exceeded {budget} cycles");
        let ci = c as usize;
        if !states[ci].pending_exec {
            // Dispatch phase: resolve the next item against the fault
            // layer at this exact `(cycle, core)` slot — the same slot
            // the lock-step walk resolves it at, so DMA bookings, RNG
            // cursors and recovery decisions land in identical order.
            // The inner loop exists for the fault layer: a drop decided
            // at this very cycle lets the *next* queued item dispatch
            // in the same slot, matching the lock-step walk.
            let mut batch: Vec<(u64, EventKind)> = Vec::new();
            let run_now = loop {
                let st = &mut states[ci];
                if st.at >= st.queue.len() {
                    break false; // parked (drained or quarantined)
                }
                let (idx, avail) = st.queue[st.at];
                if avail > now {
                    queue.arm(c, avail);
                    break false;
                }
                st.dispatch = now;
                st.depth = (st.queue.len() - st.at - 1) as u64;
                let staged = &usecase.items()[idx].staged;
                match fabric::resolve_dispatch(
                    ctl.as_mut(),
                    ci,
                    idx,
                    staged,
                    now,
                    true,
                    &mut st.core,
                    &mut dma,
                    &mut rec,
                    Some(&mut batch),
                ) {
                    fabric::Resolution::Run { exec_start } => {
                        if exec_start > now {
                            // Banks are loaded; sleep until delivery.
                            st.pending_exec = true;
                            queue.arm(c, exec_start);
                            break false;
                        }
                        break true;
                    }
                    fabric::Resolution::Dropped { at } => {
                        st.predictions.push((idx, fabric::DROPPED_PREDICTION));
                        st.finished_at = st.finished_at.max(at);
                        st.at += 1;
                        if let Some(ctl) = &ctl {
                            rec.metric("item.retries", ctl.item_retries(idx));
                        }
                        if at > now {
                            if st.at < st.queue.len() {
                                queue.arm(c, at);
                            }
                            break false;
                        }
                        // `at == now`: the next item dispatches in this
                        // same slot.
                    }
                    fabric::Resolution::Quarantined { at } => {
                        let moved: Vec<usize> =
                            st.queue.split_off(st.at).into_iter().map(|(i, _)| i).collect();
                        st.finished_at = st.finished_at.max(at);
                        let ctl = ctl.as_mut().expect("quarantine requires fault control");
                        let mut defer = Some(&mut batch);
                        let homes = fabric::reassign_items(ctl, ci, &moved, at, &mut rec, &mut defer);
                        for (item, target) in homes {
                            match target {
                                Some(t) => {
                                    // A parked target has no pending
                                    // wakeup; re-arm it where the lock-
                                    // step scheduler would next dispatch.
                                    let parked = states[t].at >= states[t].queue.len()
                                        && !states[t].pending_exec;
                                    let wake = states[t].finished_at.max(at + 1);
                                    states[t].queue.push((item, at + 1));
                                    if parked {
                                        queue.arm(t as u16, wake);
                                    }
                                }
                                None => states[ci]
                                    .predictions
                                    .push((item, fabric::DROPPED_PREDICTION)),
                            }
                        }
                        break false;
                    }
                }
            };
            if !batch.is_empty() {
                emissions.push(Emission::Fault { cycle: now, core: c, events: batch });
            }
            if !run_now {
                continue 'pop;
            }
        }
        let st = &mut states[ci];
        st.pending_exec = false;

        // Execute (or replay) the item starting at `now`.
        let item = &usecase.items()[st.queue[st.at].0];
        let spec_key = topo.spec(ci).memo_key();
        let pre = if memoize { Some(st.core.replay_state()) } else { None };
        let hit = pre.as_ref().and_then(|pre| {
            st.cache
                .iter()
                .find(|e| e.spec_key == spec_key && e.staged == item.staged && &e.pre == pre)
        });
        let (used, prediction) = if let Some(hit) = hit {
            let _prof = ncpu_obs::selfprof::span("event.replay");
            for &rel in &hit.touches_rel {
                touches.push((now + rel - 1, c));
            }
            emissions.push(Emission::Absorb {
                cycle: now + hit.used - 1,
                core: c,
                shard: hit.shard.clone(),
                offset: now as i64,
            });
            let (used, prediction, delta, post) =
                (hit.used, hit.prediction, hit.delta.clone(), hit.post.clone());
            st.core.apply_replay(&delta);
            if let Some(post) = &post {
                st.core.restore_replay_state(post);
            }
            replayed += 1;
            (used, prediction)
        } else {
            let _prof = ncpu_obs::selfprof::span("event.simulate");
            let (reads_before, _) = l2.accesses();
            let pipe_before = st.core.pipeline().stats().clone();
            let core_before = *st.core.stats();
            let internal_before = st.core.total_cycles();
            let extra_before = internal_before - pipe_before.cycles;
            st.core.load_program(st.program.clone());
            st.core.run(fabric::ITEM_BUDGET).expect("NCPU program must complete");
            let used = st.core.total_cycles() - internal_before;
            let (reads_after, _) = l2.accesses();
            let touches_rel: Vec<u64> = st
                .core
                .take_l2_touch_cycles()
                .into_iter()
                .map(|t| t - internal_before)
                .collect();
            for &rel in &touches_rel {
                touches.push((now + rel - 1, c));
            }
            // Drain this item's events onto an item-relative clock so a
            // replay can re-base them anywhere.
            let mut shard = Recorder::with_capacity(level.at_least_counters(), usize::MAX);
            shard.absorb(st.core.obs_mut(), 0, -(internal_before as i64));
            emissions.push(Emission::Absorb {
                cycle: now + used - 1,
                core: c,
                shard: shard.clone(),
                offset: now as i64,
            });
            // The owning core's mailbox: its program writes
            // `result_addr(c)`, and under the static homogeneous plan
            // `c == idx % cores` — the historical read, byte for byte.
            let prediction =
                l2.read_word(fabric::result_addr(ci)).expect("result written") as usize;
            if reads_after > reads_before {
                // The program read the shared L2: its outcome may depend
                // on content a skipped replay did not write.
                if replayed > 0 {
                    return Err(Restart::MemoUnsound);
                }
                memoize = false;
                st.cache.clear();
            } else if memoize {
                let pre = pre.expect("captured when memoizing");
                let after = st.core.pipeline().stats();
                let delta = ReplayDelta {
                    pipe: pipe_diff(&pipe_before, after),
                    core: core_diff(&core_before, st.core.stats()),
                    extra_cycles: (st.core.total_cycles() - after.cycles) - extra_before,
                };
                let post = st.core.replay_state();
                st.cache.push(Cached {
                    staged: item.staged.clone(),
                    spec_key,
                    post: (post != pre).then_some(post),
                    pre,
                    used,
                    delta,
                    shard,
                    touches_rel,
                    prediction,
                });
            }
            (used, prediction)
        };

        // A mid-item watchdog expiry cannot be simulated by an atomic
        // item execution: the lock-step engine aborts and resets the
        // core partway through. Restart there instead.
        if watchdog > 0 && used > watchdog {
            return Err(Restart::Watchdog);
        }

        let idx = st.queue[st.at].0;
        st.predictions.push((idx, prediction));
        st.busy += used;
        st.finished_at = now + used;
        fabric::record_item_metrics(&mut rec, st.finished_at - st.dispatch, used, st.depth);
        if let Some(ctl) = &ctl {
            rec.metric("item.retries", ctl.item_retries(idx));
        }
        st.at += 1;
        if st.at < st.queue.len() {
            queue.arm(c, st.finished_at);
        }
    }

    // Post-hoc L2 arbitration: per bank, same-cycle touches lose to the
    // lowest-numbered core — the same [`BankPorts`] rule the lock-step
    // walk applies inline (with one bank: every later toucher loses).
    touches.sort_unstable();
    let mut ports = BankPorts::new(topo.banks());
    let mut l2_conflicts = 0u64;
    let mut i = 0;
    while i < touches.len() {
        let cycle = touches[i].0;
        ports.reset();
        let mut j = i;
        while j < touches.len() && touches[j].0 == cycle {
            let core = touches[j].1;
            if !ports.claim(topo.bank_of(core as usize)) {
                l2_conflicts += 1;
                if rec.wants_events() {
                    emissions.push(Emission::Stall { cycle, core });
                }
            }
            j += 1;
        }
        i = j;
    }

    // Replay the deferred recorder operations in the order the per-cycle
    // walk would have performed them: by cycle, then core, stalls before
    // the same core's item absorb.
    emissions.sort_by_key(Emission::key);
    for emission in emissions {
        match emission {
            Emission::Fault { core, events, .. } => {
                // Replayed through `emit` so capacity accounting matches
                // the lock-step engine's inline emission exactly.
                for (cycle, kind) in events {
                    rec.emit(core, cycle, kind);
                }
            }
            Emission::Stall { cycle, core } => {
                rec.emit(core, cycle, EventKind::Stall { cause: StallCause::L2Conflict });
            }
            Emission::Absorb { core, mut shard, offset, .. } => {
                rec.absorb(&mut shard, core, offset);
            }
        }
    }

    let makespan = states.iter().map(|s| s.finished_at).max().unwrap_or(0);
    let mut predictions = vec![0usize; usecase.items().len()];
    let mut pool = Vec::with_capacity(cores);
    let mut busy = Vec::with_capacity(cores);
    for st in states {
        for (idx, pred) in &st.predictions {
            predictions[*idx] = *pred;
        }
        pool.push(st.core);
        busy.push(st.busy);
    }
    rec.set_counter("soc.l2_conflict_cycles", l2_conflicts);
    if let Some(ctl) = &ctl {
        ctl.write_counters(&mut rec);
    }
    let report = fabric::assemble_ncpu_report(
        &mut rec,
        &mut dma,
        &pool,
        &busy,
        usecase,
        topo,
        fabric::RunOutcome {
            config: format!("{cores}x ncpu (event)"),
            makespan,
            predictions,
        },
    );
    Ok((
        EventReport { report, l2_conflict_cycles: l2_conflicts, replayed_items: replayed },
        rec,
    ))
}

/// Fieldwise `after - before` of the pipeline counters.
fn pipe_diff(before: &PipeStats, after: &PipeStats) -> PipeStats {
    let mut delta = PipeStats {
        cycles: after.cycles - before.cycles,
        retired: after.retired - before.retired,
        load_use_stalls: after.load_use_stalls - before.load_use_stalls,
        flush_cycles: after.flush_cycles - before.flush_cycles,
        ex_stall_cycles: after.ex_stall_cycles - before.ex_stall_cycles,
        mem_stall_cycles: after.mem_stall_cycles - before.mem_stall_cycles,
        per_instr: after.per_instr.clone(),
    };
    for (mnemonic, count) in &before.per_instr {
        let entry = delta.per_instr.get_mut(mnemonic).expect("per-instr counts only grow");
        *entry -= count;
        if *entry == 0 {
            delta.per_instr.remove(mnemonic);
        }
    }
    delta
}

/// Fieldwise `after - before` of the core counters.
fn core_diff(
    before: &ncpu_core::CoreStats,
    after: &ncpu_core::CoreStats,
) -> ncpu_core::CoreStats {
    ncpu_core::CoreStats {
        switches: after.switches - before.switches,
        images_inferred: after.images_inferred - before.images_inferred,
        bnn_cycles: after.bnn_cycles - before.bnn_cycles,
        switch_overhead_cycles: after.switch_overhead_cycles - before.switch_overhead_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lockstep::run_ncpu_lockstep_traced;
    use crate::system::SystemConfig;
    use ncpu_core::SwitchPolicy;

    fn parametric(batch: usize) -> UseCase {
        UseCase::parametric(0.6, batch, crate::system::tests::pseudo_model(784, 30, 10))
    }

    /// The headline property on one fixed configuration (the fuzz suite
    /// in `tests/engine_differential.rs` covers the matrix): reports,
    /// counters, and raw event/span streams are byte-identical.
    #[test]
    fn event_engine_matches_lockstep_bytes() {
        let uc = parametric(5);
        let soc = SocConfig::default();
        for level in [TraceLevel::Counters, TraceLevel::Full] {
            let (ls, ls_rec) = run_ncpu_lockstep_traced(&uc, 2, &soc, level);
            let (ev, ev_rec) = run_ncpu_event_traced(&uc, 2, &soc, level);
            assert_eq!(ev.l2_conflict_cycles, ls.l2_conflict_cycles);
            assert_eq!(ev.report.makespan, ls.report.makespan);
            assert_eq!(ev.report.predictions, ls.report.predictions);
            assert_eq!(
                ev.report.cores.iter().map(|c| c.busy_cycles).collect::<Vec<_>>(),
                ls.report.cores.iter().map(|c| c.busy_cycles).collect::<Vec<_>>(),
            );
            assert_eq!(ev_rec.spans(), ls_rec.spans(), "{level:?}: raw span stream");
            assert_eq!(ev_rec.events(), ls_rec.events(), "{level:?}: raw instant stream");
            assert_eq!(
                ev_rec.counters().to_json(),
                ls_rec.counters().to_json(),
                "{level:?}: counter registry"
            );
            assert!(ev.replayed_items > 0, "steady-state items must replay");
        }
    }

    /// Replay accelerates without changing a single byte: batch 16 on
    /// two cores simulates two items per core and replays the rest.
    #[test]
    fn steady_state_items_replay() {
        let uc = parametric(16);
        let ev = run_ncpu_event(&uc, 2, &SocConfig::default());
        // Per core: 8 items, at most 2 distinct (cold first item,
        // steady-state second); the rest replay.
        assert!(ev.replayed_items >= 12, "replayed {}", ev.replayed_items);
        let ls = crate::lockstep::run_ncpu_lockstep(&uc, 2, &SocConfig::default());
        assert_eq!(ev.report.makespan, ls.report.makespan);
        assert_eq!(ev.report.predictions, ls.report.predictions);
    }

    /// The heterogeneous-style staged workloads exercise the DMA wakeup
    /// path (begin event at the delivery cycle).
    #[test]
    fn staged_items_wait_for_dma_delivery() {
        let uc = UseCase::image(4, 2, 1);
        for cores in [1usize, 2] {
            let (ev, _) = run_ncpu_event_traced(&uc, cores, &SocConfig::default(), TraceLevel::Counters);
            let (ls, _) =
                run_ncpu_lockstep_traced(&uc, cores, &SocConfig::default(), TraceLevel::Counters);
            assert_eq!(ev.report.makespan, ls.report.makespan, "{cores} cores");
            assert_eq!(ev.report.predictions, ls.report.predictions);
            assert_eq!(ev.l2_conflict_cycles, ls.l2_conflict_cycles);
        }
    }

    /// Naive switching produces long busy regions — the case the event
    /// jump targets — and must still match to the cycle.
    #[test]
    fn naive_policy_matches_lockstep() {
        let uc = parametric(4);
        let soc = SocConfig { switch_policy: SwitchPolicy::Naive, ..SocConfig::default() };
        let (ev, ev_rec) = run_ncpu_event_traced(&uc, 4, &soc, TraceLevel::Full);
        let (ls, ls_rec) = run_ncpu_lockstep_traced(&uc, 4, &soc, TraceLevel::Full);
        assert_eq!(ev.report.makespan, ls.report.makespan);
        assert_eq!(ev_rec.events(), ls_rec.events());
        assert_eq!(ev_rec.spans(), ls_rec.spans());
    }

    /// An aggressive fault plan on a staged workload: injections,
    /// parity detections, retries, drops and quarantines all fire, and
    /// the event engine still matches the lock-step engine byte for
    /// byte — reports, fault counters, histograms, raw trace streams.
    #[test]
    fn faulted_event_matches_lockstep_bytes() {
        let uc = UseCase::image(8, 2, 1);
        let soc = SocConfig::default();
        let plan = ncpu_fault::FaultPlan {
            seed: 7,
            sram_flip_ppm: 200_000,
            dma_stall_ppm: 150_000,
            dma_stall_cycles: 48,
            dma_truncate_ppm: 150_000,
            core_hang_ppm: 100_000,
            watchdog_cycles: 20_000_000,
            max_retries: 3,
            backoff_cycles: 32,
            quarantine_after: 6,
        };
        for level in [TraceLevel::Counters, TraceLevel::Full] {
            let (ls, ls_rec) =
                crate::lockstep::run_ncpu_lockstep_faulted(&uc, 2, &soc, level, &plan, 900);
            let (ev, ev_rec) = run_ncpu_event_faulted(&uc, 2, &soc, level, &plan, 900);
            assert_eq!(ev.report.makespan, ls.report.makespan, "{level:?}");
            assert_eq!(ev.report.predictions, ls.report.predictions);
            assert_eq!(
                ev.report.cores.iter().map(|c| c.busy_cycles).collect::<Vec<_>>(),
                ls.report.cores.iter().map(|c| c.busy_cycles).collect::<Vec<_>>(),
            );
            assert_eq!(ev_rec.spans(), ls_rec.spans(), "{level:?}: raw span stream");
            assert_eq!(ev_rec.events(), ls_rec.events(), "{level:?}: raw instant stream");
            assert_eq!(ev_rec.counters().to_json(), ls_rec.counters().to_json());
            assert_eq!(ev_rec.metrics().to_json(), ls_rec.metrics().to_json());
            let injected = ev_rec.counters().get("fault.injected.sram_flip")
                + ev_rec.counters().get("fault.injected.dma_stall")
                + ev_rec.counters().get("fault.injected.dma_truncate")
                + ev_rec.counters().get("fault.injected.core_hang");
            assert!(injected > 0, "{level:?}: plan this hot must inject");
        }
    }

    /// `max_retries: 0` drops every faulted item on its first detected
    /// fault; dropped items carry the sentinel prediction and the drop
    /// counter — identically on both engines.
    #[test]
    fn exhausted_retries_drop_items_identically() {
        let uc = UseCase::image(8, 2, 1);
        let soc = SocConfig::default();
        let plan = ncpu_fault::FaultPlan {
            seed: 11,
            sram_flip_ppm: 600_000,
            watchdog_cycles: 20_000_000,
            max_retries: 0,
            ..ncpu_fault::FaultPlan::none()
        };
        let (ls, ls_rec) = crate::lockstep::run_ncpu_lockstep_faulted(
            &uc,
            2,
            &soc,
            TraceLevel::Full,
            &plan,
            1000,
        );
        let (ev, ev_rec) = run_ncpu_event_faulted(&uc, 2, &soc, TraceLevel::Full, &plan, 1000);
        assert_eq!(ev.report.predictions, ls.report.predictions);
        assert_eq!(ev_rec.events(), ls_rec.events());
        assert_eq!(ev_rec.counters().to_json(), ls_rec.counters().to_json());
        let dropped = ev_rec.counters().get("fault.items_dropped");
        assert!(dropped > 0, "a 60% flip rate with no retries must drop");
        let sentinels =
            ev.report.predictions.iter().filter(|&&p| p == fabric::DROPPED_PREDICTION).count();
        assert_eq!(sentinels as u64, dropped);
    }

    /// An item that overruns the watchdog mid-execution cannot be
    /// aborted by an atomic-item engine: the run restarts on the
    /// lock-step engine and is relabeled — the fallback the fault plan
    /// requires for EventDriven.
    #[test]
    fn watchdog_overrun_falls_back_to_lockstep() {
        let uc = parametric(4);
        let soc = SocConfig::default();
        // No injection at all: the watchdog alone fires on genuinely
        // long items (a parametric item runs ~2.2k cycles).
        let plan = ncpu_fault::FaultPlan {
            watchdog_cycles: 1_000,
            backoff_cycles: 16,
            max_retries: 1,
            ..ncpu_fault::FaultPlan::none()
        };
        let (ls, ls_rec) = crate::lockstep::run_ncpu_lockstep_faulted(
            &uc,
            2,
            &soc,
            TraceLevel::Full,
            &plan,
            1000,
        );
        let (ev, ev_rec) = run_ncpu_event_faulted(&uc, 2, &soc, TraceLevel::Full, &plan, 1000);
        assert_eq!(ev.report.config, "2x ncpu (event)", "fallback keeps the engine label");
        assert_eq!(ev.replayed_items, 0, "fallback bypasses the replay cache");
        assert!(
            ev_rec.counters().get("fault.detected.watchdog") > 0,
            "the watchdog must have fired"
        );
        assert_eq!(ev.report.makespan, ls.report.makespan);
        assert_eq!(ev.report.predictions, ls.report.predictions);
        assert_eq!(ev_rec.events(), ls_rec.events());
        assert_eq!(ev_rec.spans(), ls_rec.spans());
        assert_eq!(ev_rec.counters().to_json(), ls_rec.counters().to_json());
    }

    /// Drives the engine through the `Engine` trait like any other.
    #[test]
    fn engine_trait_runs_event() {
        use crate::scenario::{Engine, EventDriven, Scenario};
        let s = Scenario::new(parametric(3), SystemConfig::Ncpu { cores: 2 });
        let report = EventDriven.report(&s);
        assert_eq!(report.config, "2x ncpu (event)");
        assert_eq!(EventDriven.name(), "event");
    }
}
