//! Event-driven co-simulation of the N-core SoC — byte-identical to the
//! lock-step engine, orders of magnitude faster.
//!
//! # Why jumping is sound
//!
//! The lock-step engine ([`crate::lockstep`]) walks a global clock one
//! cycle at a time so it can arbitrate the shared single-ported L2.
//! But its own arbitration rule makes that walk unnecessary:
//!
//! * A core that *loses* the L2 port replays nothing — the conflict is
//!   counted (`soc.l2_conflict_cycles`, a `stall.l2_conflict` event) but
//!   the loser's timing is unchanged. The `stalled_until` the lock-step
//!   scheduler writes on a conflict is dead for active cores (it is
//!   only consulted between items, and reset at item completion).
//! * Cores share no other cycle-level state: item programs keep data in
//!   core-local banks and only *write* one result word through to their
//!   private L2 mailbox. (The engine verifies the no-L2-read part at
//!   run time rather than trusting it; see below.)
//!
//! So cross-core coupling reduces to (a) the order DMA staging
//! transfers are booked in and (b) which same-cycle L2 touches count as
//! conflicts. Both are replicated exactly without a global cycle walk:
//!
//! * Each core posts its next wakeup (item start, DMA delivery) into a
//!   deterministic [`EventQueue`] ordered by `(cycle, core)` — the same
//!   order the lock-step per-cycle core walk books DMA transfers in.
//! * Each item executes atomically via [`NcpuCore::run`] (proven
//!   byte-identical to the `step_one` walk by the core's own tests),
//!   with the core's L2 touch log recording which cycles touched the
//!   port. Arbitration is resolved *post hoc*: collect every touch,
//!   sort, and charge every same-cycle toucher except the
//!   lowest-numbered core — exactly the lock-step priority rule.
//! * Event/span emission into the root recorder is deferred and sorted
//!   by `(cycle, core, stall-before-absorb)`, reproducing the raw
//!   emission order (and capacity-drop behavior) of the per-cycle walk.
//!
//! # Steady-state replay
//!
//! Items on one core are usually identical: same program, same staged
//! bytes, same architectural starting state. The engine memoizes each
//! simulated item keyed by its full [`ReplayState`] (registers,
//! transition neurons, bank contents — compared byte for byte, no
//! hashing) and *replays* matches: counters advance by the recorded
//! deltas, the end state is restored, the recorded events and L2
//! touches are re-based onto the new start cycle. Determinism makes
//! this exact. The one escape hatch: a program that *reads* the shared
//! L2 could observe content a skipped re-execution did not write, so an
//! item whose simulation performed any L2 read is never cached — and if
//! one shows up after a replay already happened, the whole run restarts
//! with memoization off. Fabric-generated programs never read the L2,
//! so the restart exists for soundness, not for the paper's workloads.

use ncpu_core::{NcpuCore, ReplayDelta, ReplayState, SharedL2};
use ncpu_obs::{EventKind, Recorder, StallCause, TraceLevel};
use ncpu_pipeline::PipeStats;

use crate::event_queue::EventQueue;
use crate::fabric;
use crate::report::RunReport;
use crate::system::SocConfig;
use crate::usecase::UseCase;

/// Result of an event-driven run, plus contention statistics.
#[derive(Debug, Clone)]
pub struct EventReport {
    /// The standard run report (per-core utilization, predictions…).
    pub report: RunReport,
    /// Cycles a core would have replayed because the L2 port was taken —
    /// identical to the lock-step engine's count by construction.
    pub l2_conflict_cycles: u64,
    /// Items served from the replay cache instead of being simulated
    /// (engine instrumentation; not part of the report counters).
    pub replayed_items: usize,
}

/// Runs `usecase` on `cores` event-driven NCPU cores.
///
/// # Panics
///
/// Panics if a generated program faults (a workspace bug) or the run
/// exceeds an internal cycle bound.
pub fn run_ncpu_event(usecase: &UseCase, cores: usize, soc: &SocConfig) -> EventReport {
    run_ncpu_event_traced(usecase, cores, soc, TraceLevel::Counters).0
}

/// Like [`run_ncpu_event`], but also returns the root [`Recorder`] —
/// byte-identical (events, spans, counters) to
/// [`crate::lockstep::run_ncpu_lockstep_traced`] on the same inputs,
/// except for the engine name in the report's `config`.
///
/// # Panics
///
/// Panics if a generated program faults (a workspace bug) or the run
/// exceeds an internal cycle bound.
pub fn run_ncpu_event_traced(
    usecase: &UseCase,
    cores: usize,
    soc: &SocConfig,
    level: TraceLevel,
) -> (EventReport, Recorder) {
    match run_attempt(usecase, cores, soc, level, true) {
        Ok(result) => result,
        // An item read the shared L2 after a replay already skipped a
        // write: replay is unsound for this workload, simulate all items.
        Err(MemoUnsound) => run_attempt(usecase, cores, soc, level, false)
            .unwrap_or_else(|_| unreachable!("memoization disabled: nothing to invalidate")),
    }
}

/// Replay would be unsound: restart the run without the cache.
struct MemoUnsound;

/// One memoized item execution.
struct Cached {
    staged: Vec<u8>,
    pre: ReplayState,
    used: u64,
    delta: ReplayDelta,
    /// `None` when the item ends in exactly its starting state (the
    /// steady-state common case) — restoring is then a no-op.
    post: Option<ReplayState>,
    /// The item's events/spans, cycles re-based to the item start.
    shard: Recorder,
    /// L2 touch cycles relative to the item start (1-based: a touch at
    /// `rel` happened during global cycle `start + rel - 1`).
    touches_rel: Vec<u64>,
    prediction: usize,
}

/// A deferred recorder operation, replayed in lock-step emission order.
enum Emission {
    /// `stall.l2_conflict` instant for a core that lost the L2 port.
    Stall { cycle: u64, core: u16 },
    /// An item's drained shard, absorbed with the given cycle offset.
    /// Ordered at the item's halt cycle, after any same-cycle stall.
    Absorb { cycle: u64, core: u16, shard: Recorder, offset: i64 },
}

impl Emission {
    fn key(&self) -> (u64, u16, u8) {
        match self {
            Emission::Stall { cycle, core } => (*cycle, *core, 0),
            Emission::Absorb { cycle, core, .. } => (*cycle, *core, 1),
        }
    }
}

struct CoreRun {
    core: NcpuCore,
    program: Vec<u32>,
    /// Items (by index into the use case) assigned to this core.
    queue: Vec<usize>,
    /// Position within `queue`.
    at: usize,
    /// The pending wakeup begins the staged item (banks already loaded)
    /// rather than attempting the next item start.
    begin_pending: bool,
    /// Cycle the scheduler first attempted the current item (before any
    /// DMA staging sleep) — the latency clock start, matching the
    /// lock-step engine's first-attempt cycle.
    dispatch: u64,
    busy: u64,
    finished_at: u64,
    predictions: Vec<(usize, usize)>,
    cache: Vec<Cached>,
}

fn run_attempt(
    usecase: &UseCase,
    cores: usize,
    soc: &SocConfig,
    level: TraceLevel,
    mut memoize: bool,
) -> Result<(EventReport, Recorder), MemoUnsound> {
    assert!(cores >= 1, "need at least one core");
    let mut rec = Recorder::new(level.at_least_counters());
    let l2 = SharedL2::new(fabric::L2_BYTES);
    let mut dma = fabric::new_dma(soc, level);
    let mut states: Vec<CoreRun> = (0..cores)
        .map(|c| {
            let mut core = fabric::ncpu_core(usecase, soc, level, l2.clone());
            core.set_l2_touch_log(true);
            let program = fabric::ncpu_program(usecase, &core, fabric::result_addr(c));
            CoreRun {
                core,
                program,
                queue: (0..usecase.items().len()).filter(|i| i % cores == c).collect(),
                at: 0,
                begin_pending: false,
                dispatch: 0,
                busy: 0,
                finished_at: 0,
                predictions: Vec::new(),
                cache: Vec::new(),
            }
        })
        .collect();

    let mut queue = EventQueue::new(cores);
    for (c, st) in states.iter().enumerate() {
        if !st.queue.is_empty() {
            queue.arm(c as u16, 0);
        }
    }

    let mut emissions: Vec<Emission> = Vec::new();
    let mut touches: Vec<(u64, u16)> = Vec::new();
    let mut replayed = 0usize;
    let budget = 2_000_000_000u64;
    while let Some((now, c)) = queue.pop() {
        assert!(now < budget, "event-driven run exceeded {budget} cycles");
        let st = &mut states[c as usize];
        if !st.begin_pending {
            st.dispatch = now;
            let item = &usecase.items()[st.queue[st.at]];
            if !item.staged.is_empty() {
                // Book the staging transfer and load the banks now (the
                // lock-step scheduler stages at the attempt cycle too),
                // then sleep until the DMA delivers.
                let delivered = dma.schedule(now, item.staged.len() as u32);
                let banks = st.core.pipeline_mut().mem_mut().accel_mut().banks_mut();
                let (bank, off) = banks.resolve(0).expect("data cache starts at 0");
                banks.bank_mut(bank).load(off as usize, &item.staged);
                if delivered > now {
                    st.begin_pending = true;
                    queue.arm(c, delivered);
                    continue;
                }
            }
        }
        st.begin_pending = false;

        // Execute (or replay) the item starting at `now`.
        let item = &usecase.items()[st.queue[st.at]];
        let pre = if memoize { Some(st.core.replay_state()) } else { None };
        let hit = pre.as_ref().and_then(|pre| {
            st.cache.iter().find(|e| e.staged == item.staged && &e.pre == pre)
        });
        let (used, prediction) = if let Some(hit) = hit {
            let _prof = ncpu_obs::selfprof::span("event.replay");
            for &rel in &hit.touches_rel {
                touches.push((now + rel - 1, c));
            }
            emissions.push(Emission::Absorb {
                cycle: now + hit.used - 1,
                core: c,
                shard: hit.shard.clone(),
                offset: now as i64,
            });
            let (used, prediction, delta, post) =
                (hit.used, hit.prediction, hit.delta.clone(), hit.post.clone());
            st.core.apply_replay(&delta);
            if let Some(post) = &post {
                st.core.restore_replay_state(post);
            }
            replayed += 1;
            (used, prediction)
        } else {
            let _prof = ncpu_obs::selfprof::span("event.simulate");
            let (reads_before, _) = l2.accesses();
            let pipe_before = st.core.pipeline().stats().clone();
            let core_before = *st.core.stats();
            let internal_before = st.core.total_cycles();
            let extra_before = internal_before - pipe_before.cycles;
            st.core.load_program(st.program.clone());
            st.core.run(fabric::ITEM_BUDGET).expect("NCPU program must complete");
            let used = st.core.total_cycles() - internal_before;
            let (reads_after, _) = l2.accesses();
            let touches_rel: Vec<u64> = st
                .core
                .take_l2_touch_cycles()
                .into_iter()
                .map(|t| t - internal_before)
                .collect();
            for &rel in &touches_rel {
                touches.push((now + rel - 1, c));
            }
            // Drain this item's events onto an item-relative clock so a
            // replay can re-base them anywhere.
            let mut shard = Recorder::with_capacity(level.at_least_counters(), usize::MAX);
            shard.absorb(st.core.obs_mut(), 0, -(internal_before as i64));
            emissions.push(Emission::Absorb {
                cycle: now + used - 1,
                core: c,
                shard: shard.clone(),
                offset: now as i64,
            });
            let idx = st.queue[st.at];
            let prediction =
                l2.read_word(fabric::result_addr(idx % cores)).expect("result written") as usize;
            if reads_after > reads_before {
                // The program read the shared L2: its outcome may depend
                // on content a skipped replay did not write.
                if replayed > 0 {
                    return Err(MemoUnsound);
                }
                memoize = false;
                st.cache.clear();
            } else if memoize {
                let pre = pre.expect("captured when memoizing");
                let after = st.core.pipeline().stats();
                let delta = ReplayDelta {
                    pipe: pipe_diff(&pipe_before, after),
                    core: core_diff(&core_before, st.core.stats()),
                    extra_cycles: (st.core.total_cycles() - after.cycles) - extra_before,
                };
                let post = st.core.replay_state();
                st.cache.push(Cached {
                    staged: item.staged.clone(),
                    post: (post != pre).then_some(post),
                    pre,
                    used,
                    delta,
                    shard,
                    touches_rel,
                    prediction,
                });
            }
            (used, prediction)
        };

        let idx = st.queue[st.at];
        st.predictions.push((idx, prediction));
        st.busy += used;
        st.finished_at = now + used;
        fabric::record_item_metrics(
            &mut rec,
            st.finished_at - st.dispatch,
            used,
            (st.queue.len() - st.at - 1) as u64,
        );
        st.at += 1;
        if st.at < st.queue.len() {
            queue.arm(c, st.finished_at);
        }
    }

    // Post-hoc L2 arbitration: same-cycle touches lose to the lowest-
    // numbered core, exactly the lock-step priority rule.
    touches.sort_unstable();
    let mut l2_conflicts = 0u64;
    let mut i = 0;
    while i < touches.len() {
        let cycle = touches[i].0;
        let mut j = i + 1;
        while j < touches.len() && touches[j].0 == cycle {
            l2_conflicts += 1;
            if rec.wants_events() {
                let core = touches[j].1;
                emissions.push(Emission::Stall { cycle, core });
            }
            j += 1;
        }
        i = j;
    }

    // Replay the deferred recorder operations in the order the per-cycle
    // walk would have performed them: by cycle, then core, stalls before
    // the same core's item absorb.
    emissions.sort_by_key(Emission::key);
    for emission in emissions {
        match emission {
            Emission::Stall { cycle, core } => {
                rec.emit(core, cycle, EventKind::Stall { cause: StallCause::L2Conflict });
            }
            Emission::Absorb { core, mut shard, offset, .. } => {
                rec.absorb(&mut shard, core, offset);
            }
        }
    }

    let makespan = states.iter().map(|s| s.finished_at).max().unwrap_or(0);
    let mut predictions = vec![0usize; usecase.items().len()];
    let mut pool = Vec::with_capacity(cores);
    let mut busy = Vec::with_capacity(cores);
    for st in states {
        for (idx, pred) in &st.predictions {
            predictions[*idx] = *pred;
        }
        pool.push(st.core);
        busy.push(st.busy);
    }
    rec.set_counter("soc.l2_conflict_cycles", l2_conflicts);
    let report = fabric::assemble_ncpu_report(
        &mut rec,
        &mut dma,
        &pool,
        &busy,
        usecase,
        fabric::RunOutcome {
            config: format!("{cores}x ncpu (event)"),
            makespan,
            predictions,
        },
    );
    Ok((
        EventReport { report, l2_conflict_cycles: l2_conflicts, replayed_items: replayed },
        rec,
    ))
}

/// Fieldwise `after - before` of the pipeline counters.
fn pipe_diff(before: &PipeStats, after: &PipeStats) -> PipeStats {
    let mut delta = PipeStats {
        cycles: after.cycles - before.cycles,
        retired: after.retired - before.retired,
        load_use_stalls: after.load_use_stalls - before.load_use_stalls,
        flush_cycles: after.flush_cycles - before.flush_cycles,
        ex_stall_cycles: after.ex_stall_cycles - before.ex_stall_cycles,
        mem_stall_cycles: after.mem_stall_cycles - before.mem_stall_cycles,
        per_instr: after.per_instr.clone(),
    };
    for (mnemonic, count) in &before.per_instr {
        let entry = delta.per_instr.get_mut(mnemonic).expect("per-instr counts only grow");
        *entry -= count;
        if *entry == 0 {
            delta.per_instr.remove(mnemonic);
        }
    }
    delta
}

/// Fieldwise `after - before` of the core counters.
fn core_diff(
    before: &ncpu_core::CoreStats,
    after: &ncpu_core::CoreStats,
) -> ncpu_core::CoreStats {
    ncpu_core::CoreStats {
        switches: after.switches - before.switches,
        images_inferred: after.images_inferred - before.images_inferred,
        bnn_cycles: after.bnn_cycles - before.bnn_cycles,
        switch_overhead_cycles: after.switch_overhead_cycles - before.switch_overhead_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lockstep::run_ncpu_lockstep_traced;
    use crate::system::SystemConfig;
    use ncpu_core::SwitchPolicy;

    fn parametric(batch: usize) -> UseCase {
        UseCase::parametric(0.6, batch, crate::system::tests::pseudo_model(784, 30, 10))
    }

    /// The headline property on one fixed configuration (the fuzz suite
    /// in `tests/engine_differential.rs` covers the matrix): reports,
    /// counters, and raw event/span streams are byte-identical.
    #[test]
    fn event_engine_matches_lockstep_bytes() {
        let uc = parametric(5);
        let soc = SocConfig::default();
        for level in [TraceLevel::Counters, TraceLevel::Full] {
            let (ls, ls_rec) = run_ncpu_lockstep_traced(&uc, 2, &soc, level);
            let (ev, ev_rec) = run_ncpu_event_traced(&uc, 2, &soc, level);
            assert_eq!(ev.l2_conflict_cycles, ls.l2_conflict_cycles);
            assert_eq!(ev.report.makespan, ls.report.makespan);
            assert_eq!(ev.report.predictions, ls.report.predictions);
            assert_eq!(
                ev.report.cores.iter().map(|c| c.busy_cycles).collect::<Vec<_>>(),
                ls.report.cores.iter().map(|c| c.busy_cycles).collect::<Vec<_>>(),
            );
            assert_eq!(ev_rec.spans(), ls_rec.spans(), "{level:?}: raw span stream");
            assert_eq!(ev_rec.events(), ls_rec.events(), "{level:?}: raw instant stream");
            assert_eq!(
                ev_rec.counters().to_json(),
                ls_rec.counters().to_json(),
                "{level:?}: counter registry"
            );
            assert!(ev.replayed_items > 0, "steady-state items must replay");
        }
    }

    /// Replay accelerates without changing a single byte: batch 16 on
    /// two cores simulates two items per core and replays the rest.
    #[test]
    fn steady_state_items_replay() {
        let uc = parametric(16);
        let ev = run_ncpu_event(&uc, 2, &SocConfig::default());
        // Per core: 8 items, at most 2 distinct (cold first item,
        // steady-state second); the rest replay.
        assert!(ev.replayed_items >= 12, "replayed {}", ev.replayed_items);
        let ls = crate::lockstep::run_ncpu_lockstep(&uc, 2, &SocConfig::default());
        assert_eq!(ev.report.makespan, ls.report.makespan);
        assert_eq!(ev.report.predictions, ls.report.predictions);
    }

    /// The heterogeneous-style staged workloads exercise the DMA wakeup
    /// path (begin event at the delivery cycle).
    #[test]
    fn staged_items_wait_for_dma_delivery() {
        let uc = UseCase::image(4, 2, 1);
        for cores in [1usize, 2] {
            let (ev, _) = run_ncpu_event_traced(&uc, cores, &SocConfig::default(), TraceLevel::Counters);
            let (ls, _) =
                run_ncpu_lockstep_traced(&uc, cores, &SocConfig::default(), TraceLevel::Counters);
            assert_eq!(ev.report.makespan, ls.report.makespan, "{cores} cores");
            assert_eq!(ev.report.predictions, ls.report.predictions);
            assert_eq!(ev.l2_conflict_cycles, ls.l2_conflict_cycles);
        }
    }

    /// Naive switching produces long busy regions — the case the event
    /// jump targets — and must still match to the cycle.
    #[test]
    fn naive_policy_matches_lockstep() {
        let uc = parametric(4);
        let soc = SocConfig { switch_policy: SwitchPolicy::Naive, ..SocConfig::default() };
        let (ev, ev_rec) = run_ncpu_event_traced(&uc, 4, &soc, TraceLevel::Full);
        let (ls, ls_rec) = run_ncpu_lockstep_traced(&uc, 4, &soc, TraceLevel::Full);
        assert_eq!(ev.report.makespan, ls.report.makespan);
        assert_eq!(ev_rec.events(), ls_rec.events());
        assert_eq!(ev_rec.spans(), ls_rec.spans());
    }

    /// Drives the engine through the `Engine` trait like any other.
    #[test]
    fn engine_trait_runs_event() {
        use crate::scenario::{Engine, EventDriven, Scenario};
        let s = Scenario::new(parametric(3), SystemConfig::Ncpu { cores: 2 });
        let report = EventDriven.report(&s);
        assert_eq!(report.config, "2x ncpu (event)");
        assert_eq!(EventDriven.name(), "event");
    }
}
