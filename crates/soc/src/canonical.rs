//! Content-addressed canonicalization of a [`Scenario`].
//!
//! The serve layer's result cache needs one key property: two scenarios
//! produce the same key **iff** every engine in the lockstep/event
//! equivalence class produces byte-identical reports for them. The
//! canonical encoding therefore covers exactly the semantic content of
//! a scenario — workload (model bytes, staged items, spin budget),
//! system shape, fabric parameters, normalized operating point, and the
//! full fault plan — in a fixed field order with fixed-width
//! little-endian integers, and **excludes** the two engine-invariant
//! knobs:
//!
//! * the trace level — engines raise `Off` to `Counters` internally and
//!   the `RunReport` is identical at every level (only the instant-event
//!   stream grows at `Full`), so a cache domain that pins one level
//!   (serve pins `Counters`) gets byte-identical reports for free;
//! * the engine choice itself — `Lockstep` and `EventDriven` are proven
//!   byte-identical (`tests/engine_differential.rs`), so the router may
//!   pick either without fragmenting the cache.
//!
//! The operating point is normalized through [`Scenario::volts`]: an
//! unset point and an explicit nominal `1.0 V` encode identically,
//! because every engine resolves them identically. The topology is
//! normalized through [`Scenario::topology`] the same way: an unset
//! topology and an explicit [`Topology::homogeneous`] of the scenario's
//! core count encode identically, and per-core operating points encode
//! as their *effective* voltage (an unset per-core point inherits the
//! scenario point), because that is exactly how every engine resolves
//! them.
//!
//! [`Topology::homogeneous`]: crate::topology::Topology::homogeneous
//!
//! The key itself is a 64-bit FNV-1a over the canonical bytes — the
//! same deterministic, dependency-free hash the testkit uses for
//! property seeds.

use crate::scenario::Scenario;
use crate::system::SystemConfig;
use crate::topology::SchedulerKind;
use crate::usecase::UseCaseKind;

/// Version tag leading the canonical encoding; bump when the layout
/// changes so stale persisted keys can never alias fresh ones.
/// `v2` added the fabric topology (roles, per-core DVFS, L2 banking,
/// scheduler) to the encoding.
pub const CANONICAL_TAG: &[u8] = b"ncpu-scenario-v2";

/// 64-bit FNV-1a over `bytes` — deterministic on every host, no
/// dependencies, good avalanche for cache keying.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// The canonical byte encoding of `scenario` (see the module docs for
/// what is covered and what is deliberately excluded).
pub fn canonical_bytes(scenario: &Scenario) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    out.extend_from_slice(CANONICAL_TAG);

    // Workload: kind, spin budget, model artifact, staged items.
    let uc = scenario.usecase();
    out.push(match uc.kind() {
        UseCaseKind::Image => 0,
        UseCaseKind::Motion => 1,
        UseCaseKind::Parametric => 2,
        UseCaseKind::Deep => 3,
    });
    push_u64(&mut out, uc.spin_cycles());
    let model = ncpu_bnn::io::to_bytes(uc.model());
    push_u64(&mut out, model.len() as u64);
    out.extend_from_slice(&model);
    push_u64(&mut out, uc.items().len() as u64);
    for item in uc.items() {
        push_u64(&mut out, item.label as u64);
        push_u64(&mut out, item.staged.len() as u64);
        out.extend_from_slice(&item.staged);
    }

    // System shape.
    match scenario.system() {
        SystemConfig::Heterogeneous => {
            out.push(0);
            push_u64(&mut out, 0);
        }
        SystemConfig::Ncpu { cores } => {
            out.push(1);
            push_u64(&mut out, cores as u64);
        }
    }

    // Fabric parameters.
    let soc = scenario.soc();
    push_u32(&mut out, soc.dma_bytes_per_cycle);
    push_u64(&mut out, soc.dma_setup_cycles);
    out.push(match soc.switch_policy {
        ncpu_core::SwitchPolicy::ZeroLatency => 0,
        ncpu_core::SwitchPolicy::Naive => 1,
    });
    out.push(u8::from(soc.layer_pipelining));

    // Operating point, normalized: None and Some(1.0) encode the same.
    push_u64(&mut out, scenario.volts().to_bits());

    // Fault plan, every knob.
    let fault = scenario.fault();
    push_u64(&mut out, fault.seed);
    push_u32(&mut out, fault.sram_flip_ppm);
    push_u32(&mut out, fault.dma_stall_ppm);
    push_u64(&mut out, fault.dma_stall_cycles);
    push_u32(&mut out, fault.dma_truncate_ppm);
    push_u32(&mut out, fault.core_hang_ppm);
    push_u64(&mut out, fault.watchdog_cycles);
    push_u32(&mut out, fault.max_retries);
    push_u64(&mut out, fault.backoff_cycles);
    push_u32(&mut out, fault.quarantine_after);

    // Topology, resolved: an unset topology materializes as
    // `Topology::homogeneous(cores)`, so it encodes identically to the
    // explicit homogeneous default. Per-core operating points encode as
    // the *effective* voltage (unset inherits the scenario point) —
    // the normalization every engine applies.
    let topo = scenario.topology();
    let volts = scenario.volts();
    push_u64(&mut out, topo.cores() as u64);
    for spec in topo.specs() {
        out.push(spec.role.tag());
        push_u64(&mut out, spec.volts(volts).to_bits());
        push_u64(&mut out, spec.bank as u64);
    }
    push_u64(&mut out, topo.banks() as u64);
    for &width in topo.bank_bytes() {
        push_u64(&mut out, width as u64);
    }
    out.push(match topo.scheduler() {
        SchedulerKind::Static => 0,
        SchedulerKind::WorkStealing => 1,
    });

    out
}

/// [`fnv1a_64`] of [`canonical_bytes`] — the content-addressed cache
/// key (also available as [`Scenario::cache_key`]).
pub fn cache_key(scenario: &Scenario) -> u64 {
    fnv1a_64(&canonical_bytes(scenario))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::usecase::{pseudo_model, UseCase};
    use crate::{FaultPlan, SocConfig};
    use ncpu_core::SwitchPolicy;
    use ncpu_obs::TraceLevel;
    use ncpu_testkit::rng::Rng;
    use ncpu_testkit::{prop::Prop, prop_assert, prop_assert_eq, prop_assert_ne};

    /// Everything a generated parametric scenario is built from; small
    /// integers so shrinking stays meaningful. Grouped as three nested
    /// tuples (workload/fabric, environment, topology) to stay within
    /// the harness's tuple-shrinking arity.
    type Draw = ((u8, u8, u8, u8, u8), (u8, u64, bool, bool), (u8, bool, bool, u8));

    fn draw(rng: &mut Rng) -> Draw {
        (
            (
                rng.gen_range(1..=9u8),  // cpu_fraction = n/10
                rng.gen_range(1..=16u8), // batch
                rng.gen_range(1..=4u8),  // cores
                rng.gen_range(1..=16u8), // dma_bytes_per_cycle
                rng.gen_range(0..=32u8), // dma_setup_cycles
            ),
            (
                rng.gen_range(0..=9u8),      // operating point = 1.0 - n/20
                rng.gen_range(0..1_000u64),  // fault seed
                rng.gen_range(0..2u64) == 1, // naive switch policy
                rng.gen_range(0..2u64) == 1, // layer pipelining
            ),
            (
                rng.gen_range(0..=2u8),      // last core role tag
                rng.gen_range(0..2u64) == 1, // split the L2 into two banks
                rng.gen_range(0..2u64) == 1, // work-stealing scheduler
                rng.gen_range(0..=4u8),      // core 0 DVFS point (0 = inherit)
            ),
        )
    }

    /// Materializes the topology third of a draw. Per-core points use
    /// the 0.46–0.49 V corner, disjoint from the scenario-level points
    /// (0.55–1.0 V), so a per-core mutation can never alias the
    /// inherited voltage.
    fn build_topology(cores: usize, t: &(u8, bool, bool, u8)) -> crate::topology::Topology {
        use crate::topology::{CoreRole, CoreSpec, SchedulerKind, Topology};
        let (role, split, steal, core0_op) = *t;
        let mut specs = vec![CoreSpec::reconfigurable(); cores];
        specs[cores - 1].role = match role % 3 {
            0 => CoreRole::Reconfigurable,
            1 => CoreRole::CpuOnly,
            _ => CoreRole::BnnOnly,
        };
        if core0_op > 0 {
            specs[0].operating_point = Some(0.45 + f64::from(core0_op) / 100.0);
        }
        let bank_bytes = if split {
            for (c, spec) in specs.iter_mut().enumerate() {
                spec.bank = c % 2;
            }
            vec![3 * crate::fabric::L2_BYTES / 4, crate::fabric::L2_BYTES / 4]
        } else {
            vec![crate::fabric::L2_BYTES]
        };
        let sched = if steal { SchedulerKind::WorkStealing } else { SchedulerKind::Static };
        Topology::from_specs(specs, bank_bytes, sched).expect("drawn topology is structural")
    }

    fn build(d: &Draw) -> Scenario {
        let ((frac, batch, cores, dma, setup), (op, seed, naive, pipelining), topo) = *d;
        // 128-bit input keeps the inference latency high enough that
        // every cpu_fraction in 0.1..=0.9 maps to a distinct spin
        // budget (the parametric constructor floors tiny budgets at 32
        // cycles, which would alias 0.1 and 0.2 on very small models).
        let uc = UseCase::parametric(
            f64::from(frac.clamp(1, 9)) / 10.0,
            usize::from(batch.max(1)),
            pseudo_model(128, 10, 10),
        );
        let soc = SocConfig {
            dma_bytes_per_cycle: u32::from(dma.max(1)),
            dma_setup_cycles: u64::from(setup),
            switch_policy: if naive { SwitchPolicy::Naive } else { SwitchPolicy::ZeroLatency },
            layer_pipelining: pipelining,
        };
        let cores = usize::from(cores.clamp(1, 4));
        let mut s = Scenario::new(uc, crate::SystemConfig::Ncpu { cores })
            .with_soc(soc)
            .with_faults(FaultPlan { seed, sram_flip_ppm: 100, ..FaultPlan::none() })
            .with_topology(build_topology(cores, &topo));
        if op > 0 {
            s = s.with_operating_point(1.0 - f64::from(op) / 20.0);
        }
        s
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Offset basis for the empty input, standard FNV-1a test vector
        // for "a".
        assert_eq!(fnv1a_64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_ne!(fnv1a_64(b"ab"), fnv1a_64(b"ba"), "order matters");
    }

    #[test]
    fn unset_topology_hashes_like_the_explicit_homogeneous_default() {
        use crate::topology::Topology;
        let uc = UseCase::parametric(0.5, 2, pseudo_model(64, 10, 10));
        let unset = Scenario::new(uc.clone(), crate::SystemConfig::Ncpu { cores: 2 });
        let explicit = Scenario::new(uc, crate::SystemConfig::Ncpu { cores: 2 })
            .with_topology(Topology::homogeneous(2));
        assert_eq!(unset.cache_key(), explicit.cache_key());
        assert_eq!(canonical_bytes(&unset), canonical_bytes(&explicit));
    }

    #[test]
    fn trace_level_and_default_operating_point_are_non_semantic() {
        let mk = || build(&((5, 4, 2, 4, 16), (0, 7, false, true), (0, false, false, 0)));
        let base = mk();
        assert_eq!(base.cache_key(), mk().cache_key(), "construction is deterministic");
        for level in [TraceLevel::Off, TraceLevel::Counters, TraceLevel::Full] {
            assert_eq!(mk().with_trace(level).cache_key(), base.cache_key());
        }
        assert_eq!(
            mk().with_operating_point(1.0).cache_key(),
            base.cache_key(),
            "explicit nominal voltage must hash like the unset default"
        );
        assert_ne!(
            mk().with_operating_point(0.8).cache_key(),
            base.cache_key(),
            "a real DVFS point is semantic"
        );
    }

    /// The shrinking property suite: non-semantic knobs never move the
    /// key; every semantic knob does.
    #[test]
    fn canonical_key_separates_semantic_from_non_semantic_fields() {
        Prop::new("canonical_key_separates_fields").cases(256).run(draw, |d| {
            let base = build(d);
            let key = base.cache_key();
            // Rebuilding from the same draw is stable.
            prop_assert_eq!(build(d).cache_key(), key);
            // Non-semantic: trace level (any), default-filled operating
            // point when the draw left it at nominal.
            prop_assert_eq!(build(d).with_trace(TraceLevel::Full).cache_key(), key);
            prop_assert_eq!(build(d).with_trace(TraceLevel::Off).cache_key(), key);
            if base.operating_point().is_none() {
                prop_assert_eq!(build(d).with_operating_point(1.0).cache_key(), key);
            }
            // Semantic: mutate each field of the draw in a way that must
            // change the canonical bytes, and demand a fresh key.
            let ((frac, batch, cores, dma, setup), (op, seed, naive, pipelining), topo) = *d;
            let (role, split, steal, core0_op) = topo;
            let w = (frac, batch, cores, dma, setup);
            let e = (op, seed, naive, pipelining);
            let mutations: Vec<(&str, Draw)> = vec![
                ("cpu_fraction", ((if frac >= 9 { 1 } else { frac + 1 }, batch, cores, dma, setup), e, topo)),
                ("batch", ((frac, batch + 1, cores, dma, setup), e, topo)),
                ("cores", ((frac, batch, if cores >= 4 { 1 } else { cores + 1 }, dma, setup), e, topo)),
                ("dma_bytes", ((frac, batch, cores, dma + 1, setup), e, topo)),
                ("dma_setup", ((frac, batch, cores, dma, setup + 1), e, topo)),
                ("operating_point", (w, (if op >= 9 { 1 } else { op + 1 }, seed, naive, pipelining), topo)),
                ("fault_seed", (w, (op, seed + 1, naive, pipelining), topo)),
                ("switch_policy", (w, (op, seed, !naive, pipelining), topo)),
                ("layer_pipelining", (w, (op, seed, naive, !pipelining), topo)),
                ("topo_role", (w, e, ((role + 1) % 3, split, steal, core0_op))),
                ("topo_banks", (w, e, (role, !split, steal, core0_op))),
                ("topo_scheduler", (w, e, (role, split, !steal, core0_op))),
                ("topo_core0_op", (w, e, (role, split, steal, (core0_op % 4) + 1))),
            ];
            for (what, mutated) in &mutations {
                prop_assert_ne!(
                    build(mutated).cache_key(),
                    key,
                    "semantic field {} changed but the key did not",
                    what
                );
            }
            // The canonical bytes start with the version tag.
            prop_assert!(canonical_bytes(&base).starts_with(CANONICAL_TAG));
            Ok(())
        });
    }

    #[test]
    fn fault_plan_knobs_are_all_semantic() {
        let base = build(&((5, 4, 2, 4, 16), (2, 7, false, true), (0, false, false, 0)));
        let key = base.cache_key();
        let plans = [
            FaultPlan { seed: 8, sram_flip_ppm: 100, ..FaultPlan::none() },
            FaultPlan { seed: 7, sram_flip_ppm: 101, ..FaultPlan::none() },
            FaultPlan { seed: 7, sram_flip_ppm: 100, dma_stall_ppm: 1, dma_stall_cycles: 4, ..FaultPlan::none() },
            FaultPlan { seed: 7, sram_flip_ppm: 100, watchdog_cycles: 9, ..FaultPlan::none() },
            FaultPlan { seed: 7, sram_flip_ppm: 100, max_retries: 2, ..FaultPlan::none() },
            FaultPlan { seed: 7, sram_flip_ppm: 100, quarantine_after: 3, ..FaultPlan::none() },
        ];
        for plan in plans {
            assert_ne!(
                build(&((5, 4, 2, 4, 16), (2, 7, false, true), (0, false, false, 0)))
                    .with_faults(plan)
                    .cache_key(),
                key,
                "fault knob change must move the key: {plan:?}"
            );
        }
    }

    #[test]
    fn different_workload_kinds_never_collide() {
        let parametric = Scenario::new(
            UseCase::parametric(0.5, 2, pseudo_model(64, 10, 10)),
            crate::SystemConfig::Ncpu { cores: 2 },
        );
        let hetero = Scenario::new(
            UseCase::parametric(0.5, 2, pseudo_model(64, 10, 10)),
            crate::SystemConfig::Heterogeneous,
        );
        assert_ne!(parametric.cache_key(), hetero.cache_key(), "system shape is semantic");
    }
}
