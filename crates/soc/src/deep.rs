//! Deeper networks than the physical array (paper Section VIII-A):
//! single-core layer rollback vs NCPU cores connected in series.
//!
//! "In our NCPU SoC, deeper BNN with more layers can be supported by
//! rolling back the BNN operation or connecting two cores in series."
//! Rollback re-uses one core's four physical layers for all logical
//! layers (half the throughput); series mode splits the network across
//! N cores so each image streams segment 0 → link → … → segment N−1.
//! The paper builds the two-core split; [`run_series_n`] generalizes it
//! to any segment count.

use std::fmt;

use ncpu_accel::{Accelerator, BatchRun};
use ncpu_bnn::{BitVec, BnnLayer, BnnModel, Topology};
use ncpu_fault::{Fault, FaultPlan, FaultSession};
use ncpu_obs::{Detector, EventKind, FaultClass, Recorder, Recovery, TraceLevel};

use crate::fabric;
use crate::system::SocConfig;

/// Structured error for the deep series path — the conditions that used
/// to surface as `expect`/`assert` panics deep inside the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeepError {
    /// The requested segment count is outside `2..=layers`.
    SegmentsOutOfRange {
        /// Requested segment count.
        segments: usize,
        /// Layers the model actually has.
        layers: usize,
    },
    /// An input image's width does not match the model's input layer.
    InputWidthMismatch {
        /// Index of the offending image.
        image: usize,
        /// The model's input width in bits.
        expected: usize,
        /// The image's width in bits.
        got: usize,
    },
    /// A series segment ended up with no layers, so it cannot produce
    /// link activations (defensive: unreachable for models built via
    /// [`ncpu_bnn::Topology::new`], which rejects empty layer lists).
    EmptySegment {
        /// Index of the offending segment.
        segment: usize,
    },
}

impl fmt::Display for DeepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeepError::SegmentsOutOfRange { segments, layers } => write!(
                f,
                "series mode needs 2..={layers} segments for a {layers}-layer model, got {segments}"
            ),
            DeepError::InputWidthMismatch { image, expected, got } => write!(
                f,
                "input image {image} is {got} bits wide, the model expects {expected}"
            ),
            DeepError::EmptySegment { segment } => {
                write!(f, "series segment {segment} has no layers")
            }
        }
    }
}

impl std::error::Error for DeepError {}

/// Splits a deep model into `(front, back)` halves for series execution.
///
/// The front half's "classes" are its full final layer (every activation
/// bit crosses the inter-core link).
///
/// # Panics
///
/// Panics if the model has fewer than 2 layers or `split` is not inside
/// `1..layers`.
pub fn split_model(deep: &BnnModel, split: usize) -> (BnnModel, BnnModel) {
    let layers = deep.layers();
    assert!(layers.len() >= 2, "need at least two layers to split");
    assert!((1..layers.len()).contains(&split), "split must be interior");
    let front_layers: Vec<BnnLayer> = layers[..split].to_vec();
    let back_layers: Vec<BnnLayer> = layers[split..].to_vec();
    let front_widths: Vec<usize> = front_layers.iter().map(BnnLayer::neurons).collect();
    let back_widths: Vec<usize> = back_layers.iter().map(BnnLayer::neurons).collect();
    let front = BnnModel::new(
        Topology::new(
            deep.topology().input(),
            front_widths.clone(),
            *front_widths.last().expect("nonempty"),
        ),
        front_layers,
    );
    let back = BnnModel::new(
        Topology::new(
            *front_widths.last().expect("nonempty"),
            back_widths,
            deep.topology().classes(),
        ),
        back_layers,
    );
    (front, back)
}

/// Splits a deep model into `segments` contiguous sub-models for N-core
/// series execution. Segment boundaries fall at `layers * i / segments`,
/// so `segments == 2` reproduces [`split_model`] at `layers / 2` exactly.
/// Interior segments' "classes" are their full final layer (every
/// activation bit crosses the link).
///
/// # Panics
///
/// Panics unless `1 ≤ segments ≤ layers`.
pub fn split_model_n(deep: &BnnModel, segments: usize) -> Vec<BnnModel> {
    let layers = deep.layers().len();
    assert!(
        (1..=layers).contains(&segments),
        "need 1..=({layers}) segments, got {segments}"
    );
    if segments == 1 {
        return vec![deep.clone()];
    }
    let mut parts = Vec::with_capacity(segments);
    let mut rest = deep.clone();
    for s in 0..segments - 1 {
        // Boundary between global layer indices, re-based onto `rest`.
        let done = layers * s / segments;
        let cut = layers * (s + 1) / segments - done;
        let (seg, tail) = split_model(&rest, cut);
        parts.push(seg);
        rest = tail;
    }
    parts.push(rest);
    parts
}

/// Outcome of a deep-model batch run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeepRun {
    /// Predicted class per image.
    pub outputs: Vec<usize>,
    /// Makespan in cycles.
    pub total_cycles: u64,
    /// Latency of the first image.
    pub first_latency: u64,
    /// Steady-state cycles between completions (0 for batches < 2).
    pub steady_interval: u64,
}

impl From<BatchRun> for DeepRun {
    fn from(run: BatchRun) -> DeepRun {
        DeepRun {
            first_latency: run.first_latency(),
            steady_interval: run.steady_interval(),
            outputs: run.outputs,
            total_cycles: run.total_cycles,
        }
    }
}

/// Runs `deep` on one core by rolling logical layers onto the physical
/// array.
pub fn run_rolled(deep: &BnnModel, inputs: &[BitVec], soc: &SocConfig) -> DeepRun {
    run_rolled_traced(deep, inputs, soc, TraceLevel::Off).0
}

/// Like [`run_rolled`], returning the recorder with the rolled core's
/// per-image `bnn` spans on lane 0 and the run counters.
pub fn run_rolled_traced(
    deep: &BnnModel,
    inputs: &[BitVec],
    soc: &SocConfig,
    level: TraceLevel,
) -> (DeepRun, Recorder) {
    run_rolled_arrivals_traced(deep, inputs, &vec![0; inputs.len()], soc, level)
}

/// Like [`run_rolled_traced`], with a per-image arrival cycle (the
/// fault layer's staging prologue delays deliveries; a clean run is all
/// zeros). Latency metrics stay anchored at cycle 0 — an arrival delay
/// is recovery time the image spent in service.
///
/// # Panics
///
/// Panics if `arrivals` is not parallel to `inputs`.
pub fn run_rolled_arrivals_traced(
    deep: &BnnModel,
    inputs: &[BitVec],
    arrivals: &[u64],
    soc: &SocConfig,
    level: TraceLevel,
) -> (DeepRun, Recorder) {
    assert_eq!(inputs.len(), arrivals.len(), "one arrival per image");
    let mut rec = Recorder::new(level.at_least_counters());
    // The physical array: the paper's 4 × (widest layer) configuration.
    let widest = deep.layers().iter().map(BnnLayer::neurons).max().expect("layers");
    let physical = BnnModel::zeros(&Topology::paper(
        deep.topology().input(),
        widest,
        deep.topology().classes().min(widest),
    ));
    let mut accel = Accelerator::new(physical, fabric::accel_config(soc));
    accel.set_obs_level(level.at_least_counters());
    let timed: Vec<(BitVec, u64)> =
        inputs.iter().zip(arrivals).map(|(i, &at)| (i.clone(), at)).collect();
    let batch = accel.run_batch_deep(deep, &timed);
    // Latency is anchored at cycle 0 (arrival delays included); service
    // is the image's traversal of the rolled array.
    for (i, &(start, end)) in batch.spans.iter().enumerate() {
        fabric::record_item_metrics(&mut rec, end, end - start, (inputs.len() - 1 - i) as u64);
    }
    let run: DeepRun = batch.into();
    rec.absorb(accel.obs_mut(), 0, 0);
    rec.set_counter("accel.busy_cycles", accel.stats().busy_cycles);
    fabric::set_run_counters(&mut rec, run.total_cycles, inputs.len());
    fabric::record_util_metric(&mut rec, accel.stats().busy_cycles, run.total_cycles);
    (run, rec)
}

/// Runs `deep` split across two NCPU cores in series: core 0 computes the
/// front half, the activations cross the inter-core link (DMA-costed),
/// and core 1 computes the back half while core 0 starts the next image.
pub fn run_series(deep: &BnnModel, inputs: &[BitVec], soc: &SocConfig) -> DeepRun {
    run_series_traced(deep, inputs, soc, TraceLevel::Off).0
}

/// Like [`run_series`], returning the recorder with `front`/`back` phase
/// spans (lanes 0/1), the inter-core link's DMA spans (lane 2), and the
/// `deep.link_bytes` counter — the traffic the series split puts on the
/// fabric.
pub fn run_series_traced(
    deep: &BnnModel,
    inputs: &[BitVec],
    soc: &SocConfig,
    level: TraceLevel,
) -> (DeepRun, Recorder) {
    run_series_n_traced(deep, inputs, soc, 2, level)
}

/// Runs `deep` split across `segments` NCPU cores in series (the N-core
/// generalization of [`run_series`]): each image streams through segment
/// 0, crosses the shared inter-core link (DMA-costed), and so on until
/// the final segment classifies it, with every segment pipelining across
/// images.
///
/// The recorder carries one phase lane per segment — labelled `front`,
/// `mid`…, `back` — the link's DMA spans on lane `segments`, per-segment
/// `core{s}.busy_cycles` counters, and the total `deep.link_bytes`.
///
/// # Panics
///
/// Panics unless `2 ≤ segments ≤ layers` and every input matches the
/// model's width — use [`try_run_series_n_traced`] to get those
/// conditions as a structured [`DeepError`] instead.
pub fn run_series_n_traced(
    deep: &BnnModel,
    inputs: &[BitVec],
    soc: &SocConfig,
    segments: usize,
    level: TraceLevel,
) -> (DeepRun, Recorder) {
    try_run_series_n_traced(deep, inputs, soc, segments, level)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`run_series_n_traced`]: invalid segment counts,
/// mismatched input widths, and (defensively) empty segments come back
/// as a [`DeepError`] instead of a panic.
///
/// # Errors
///
/// See [`DeepError`].
pub fn try_run_series_n_traced(
    deep: &BnnModel,
    inputs: &[BitVec],
    soc: &SocConfig,
    segments: usize,
    level: TraceLevel,
) -> Result<(DeepRun, Recorder), DeepError> {
    try_run_series_n_arrivals_traced(deep, inputs, &vec![0; inputs.len()], soc, segments, level)
}

/// Like [`try_run_series_n_traced`], with a per-image arrival cycle
/// (the fault layer's staging prologue delays deliveries; a clean run
/// is all zeros). Latency metrics stay anchored at cycle 0 — an
/// arrival delay is recovery time the image spent in service.
///
/// # Errors
///
/// See [`DeepError`].
///
/// # Panics
///
/// Panics if `arrivals` is not parallel to `inputs`.
pub fn try_run_series_n_arrivals_traced(
    deep: &BnnModel,
    inputs: &[BitVec],
    arrivals: &[u64],
    soc: &SocConfig,
    segments: usize,
    level: TraceLevel,
) -> Result<(DeepRun, Recorder), DeepError> {
    assert_eq!(inputs.len(), arrivals.len(), "one arrival per image");
    let layers = deep.layers().len();
    if !(2..=layers).contains(&segments) {
        return Err(DeepError::SegmentsOutOfRange { segments, layers });
    }
    let expected = deep.topology().input();
    for (image, input) in inputs.iter().enumerate() {
        if input.len() != expected {
            return Err(DeepError::InputWidthMismatch { image, expected, got: input.len() });
        }
    }
    let mut rec = Recorder::new(level.at_least_counters());
    let parts = split_model_n(deep, segments);
    let mut link = fabric::new_dma(soc, level);

    let mut timed: Vec<(BitVec, u64)> =
        inputs.iter().zip(arrivals).map(|(i, &at)| (i.clone(), at)).collect();
    let mut total_link_bytes = 0u64;
    let mut last_run: Option<BatchRun> = None;
    let mut front_starts: Vec<u64> = Vec::new();
    let mut seg_busy: Vec<u64> = Vec::new();
    for (s, part) in parts.iter().enumerate() {
        let mut accel = Accelerator::new(part.clone(), fabric::accel_config(soc));
        let run = accel.run_batch_timed(&timed);
        let label = if s == 0 {
            "front"
        } else if s == parts.len() - 1 {
            "back"
        } else {
            "mid"
        };
        for &(start, end) in &run.spans {
            rec.phase(s as u16, label, start, end);
        }
        if s == 0 {
            front_starts = run.spans.iter().map(|&(start, _)| start).collect();
        }
        rec.set_counter(format!("core{s}.busy_cycles"), accel.stats().busy_cycles);
        seg_busy.push(accel.stats().busy_cycles);
        if s < parts.len() - 1 {
            // This segment's activations (computed functionally) cross the
            // link as each image completes, in image order.
            let width =
                part.topology().layers().last().ok_or(DeepError::EmptySegment { segment: s })?;
            let link_bytes = width.div_ceil(8) as u32;
            total_link_bytes += u64::from(link_bytes) * inputs.len() as u64;
            let mut next = Vec::with_capacity(timed.len());
            for ((input, _), &(_, end)) in timed.iter().zip(&run.spans) {
                let acts = part
                    .layer_outputs(input)
                    .last()
                    .ok_or(DeepError::EmptySegment { segment: s })?
                    .clone();
                let delivered = link.schedule(end, link_bytes);
                next.push((acts, delivered));
            }
            timed = next;
        }
        last_run = Some(run);
    }
    let back_run = last_run.expect("at least two segments");
    rec.set_counter("deep.link_bytes", total_link_bytes);
    fabric::snapshot_dma(&mut rec, &mut link, segments as u16);
    fabric::set_run_counters(&mut rec, back_run.total_cycles, inputs.len());
    // All images arrive at cycle 0, so latency is the final-segment
    // completion cycle; service is the image's residency in the series
    // pipeline (first-segment entry to last-segment exit).
    for (i, &(_, end)) in back_run.spans.iter().enumerate() {
        let service = end - front_starts[i];
        fabric::record_item_metrics(&mut rec, end, service, (inputs.len() - 1 - i) as u64);
    }
    for &busy in &seg_busy {
        fabric::record_util_metric(&mut rec, busy, back_run.total_cycles);
    }

    // Functional check: the series result must equal the whole model.
    debug_assert!(back_run
        .outputs
        .iter()
        .zip(inputs)
        .all(|(&o, i)| o == deep.classify(i)));

    let run = DeepRun {
        outputs: back_run.outputs.clone(),
        total_cycles: back_run.total_cycles,
        first_latency: back_run.spans.first().map_or(0, |&(_, e)| e),
        steady_interval: back_run.steady_interval(),
    };
    Ok((run, rec))
}

/// What the fault prologue decided for one deep batch: per-image
/// staging delays, dropped images, and the fault-layer bookkeeping the
/// caller merges into the run's recorder after the batch executes.
///
/// The deep engine has no spare cores to re-schedule onto (every core
/// holds a resident model segment), so quarantine is structurally
/// disabled here: recovery is retry-with-backoff, then drop.
pub(crate) struct DeepPrologue {
    /// Arrival cycle per *surviving* image, parallel to `kept`.
    pub arrivals: Vec<u64>,
    /// Original item indices that survived staging, in order.
    pub kept: Vec<usize>,
    /// Original item indices the recovery policy dropped.
    pub dropped: Vec<usize>,
    /// Fault-layer instants, sorted by cycle — emit them on one
    /// dedicated lane so per-lane timestamp order holds.
    pub events: Vec<(u64, EventKind)>,
    /// `fault.recovery_cycles` histogram samples.
    pub recovery_cycles: Vec<u64>,
    /// `item.retries` histogram samples, one per item in index order.
    pub retries: Vec<u64>,
    /// The `fault.*` counters every engine exports, name → value.
    pub counters: [(&'static str, u64); 9],
    /// Cycle of the last fault-layer event (0 when none): a dropped
    /// item's detection can outlast every surviving completion, so the
    /// run's makespan is the max of the batch and this horizon.
    pub horizon: u64,
}

/// Resolves the fault plan against a deep batch's input staging, before
/// the accelerator sees any image. Each image's delivery draws from the
/// same per-(item, attempt) split RNG streams the SoC engines use;
/// benign stalls delay the arrival, detected faults (parity at the
/// priced delivery cycle, watchdog for hangs) retry with exponential
/// backoff until the plan's budget drops the image.
pub(crate) fn deep_fault_prologue(
    plan: &FaultPlan,
    millivolts: u32,
    staged_sizes: &[usize],
    soc: &SocConfig,
) -> DeepPrologue {
    let session = FaultSession::new(plan, millivolts);
    let cost = |bytes: u64| {
        soc.dma_setup_cycles + bytes.div_ceil(u64::from(soc.dma_bytes_per_cycle.max(1)))
    };
    let mut arrivals = Vec::new();
    let mut kept = Vec::new();
    let mut dropped = Vec::new();
    let mut events: Vec<(u64, EventKind)> = Vec::new();
    let mut recovery_cycles = Vec::new();
    let mut retries_hist = Vec::with_capacity(staged_sizes.len());
    let (mut flips, mut stalls, mut truncates, mut hangs) = (0u64, 0u64, 0u64, 0u64);
    let (mut parity, mut watchdog) = (0u64, 0u64);
    let (mut retries, mut drops) = (0u64, 0u64);
    for (i, &bytes) in staged_sizes.iter().enumerate() {
        let mut attempt = 0u32;
        let mut faults = 0u32;
        let mut delay = 0u64;
        // `Some(arrival)` once staging succeeds, `None` once dropped.
        let outcome = loop {
            let draw = session.draw(i as u64, attempt, bytes);
            attempt += 1;
            match draw {
                None => break Some(delay),
                Some(Fault::DmaStall { extra_cycles }) => {
                    // Benign: the image arrives, just late.
                    stalls += 1;
                    events.push((delay, EventKind::Fault { class: FaultClass::DmaStall }));
                    break Some(delay + extra_cycles);
                }
                Some(fault) => {
                    let (class, detect_at, by) = match fault {
                        Fault::SramFlip { .. } => {
                            flips += 1;
                            (FaultClass::SramFlip, delay + cost(bytes as u64), Detector::Parity)
                        }
                        Fault::DmaTruncate { bytes: delivered } => {
                            truncates += 1;
                            (
                                FaultClass::DmaTruncate,
                                delay + cost(u64::from(delivered)),
                                Detector::Parity,
                            )
                        }
                        Fault::CoreHang => {
                            hangs += 1;
                            (FaultClass::CoreHang, delay + plan.watchdog_cycles, Detector::Watchdog)
                        }
                        Fault::DmaStall { .. } => unreachable!("handled above"),
                    };
                    match by {
                        Detector::Parity => parity += 1,
                        Detector::Watchdog => watchdog += 1,
                    }
                    events.push((delay, EventKind::Fault { class }));
                    events.push((detect_at, EventKind::Detect { by }));
                    faults += 1;
                    if faults > plan.max_retries {
                        drops += 1;
                        events.push((detect_at, EventKind::Recover { action: Recovery::Drop }));
                        recovery_cycles.push(detect_at - delay);
                        break None;
                    }
                    retries += 1;
                    events.push((detect_at, EventKind::Recover { action: Recovery::Retry }));
                    let exp = (faults - 1).min(16);
                    let resume =
                        detect_at.saturating_add(plan.backoff_cycles.saturating_mul(1 << exp));
                    recovery_cycles.push(resume - delay);
                    delay = resume;
                }
            }
        };
        retries_hist.push(u64::from(attempt.saturating_sub(1)));
        match outcome {
            Some(arrival) => {
                arrivals.push(arrival);
                kept.push(i);
            }
            None => dropped.push(i),
        }
    }
    let horizon = events.iter().map(|&(cycle, _)| cycle).max().unwrap_or(0);
    events.sort_by_key(|&(cycle, _)| cycle);
    DeepPrologue {
        arrivals,
        kept,
        dropped,
        events,
        recovery_cycles,
        retries: retries_hist,
        counters: [
            ("fault.injected.sram_flip", flips),
            ("fault.injected.dma_stall", stalls),
            ("fault.injected.dma_truncate", truncates),
            ("fault.injected.core_hang", hangs),
            ("fault.detected.parity", parity),
            ("fault.detected.watchdog", watchdog),
            ("fault.retries", retries),
            ("fault.items_dropped", drops),
            ("fault.cores_quarantined", 0),
        ],
        horizon,
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    pub(crate) fn deep_model(layers: usize) -> BnnModel {
        let topo = Topology::new(48, vec![20; layers], 8);
        let built = (0..layers)
            .map(|l| {
                let n_in = topo.layer_input(l);
                let rows: Vec<BitVec> = (0..20)
                    .map(|j| {
                        BitVec::from_bools((0..n_in).map(|i| (i * 7 + j * 3 + l) % 5 < 2))
                    })
                    .collect();
                BnnLayer::new(rows, (0..20).map(|j| (j % 3) - 1).collect())
            })
            .collect();
        BnnModel::new(topo, built)
    }

    pub(crate) fn inputs(n: usize) -> Vec<BitVec> {
        (0..n).map(|k| BitVec::from_bools((0..48).map(|i| (i + k) % 3 == 0))).collect()
    }

    #[test]
    fn split_preserves_function() {
        let deep = deep_model(8);
        let (front, back) = split_model(&deep, 4);
        for input in inputs(6) {
            let acts = front.layer_outputs(&input).last().unwrap().clone();
            assert_eq!(back.classify(&acts), deep.classify(&input));
        }
    }

    #[test]
    fn split_n_matches_two_way_split_and_preserves_function() {
        let deep = deep_model(8);
        let parts = split_model_n(&deep, 2);
        let (front, back) = split_model(&deep, 4);
        assert_eq!(parts[0].topology().layers(), front.topology().layers());
        assert_eq!(parts[1].topology().layers(), back.topology().layers());
        for segments in [1usize, 2, 3, 4] {
            let parts = split_model_n(&deep, segments);
            assert_eq!(parts.len(), segments);
            assert_eq!(
                parts.iter().map(|p| p.layers().len()).sum::<usize>(),
                deep.layers().len()
            );
            for input in inputs(3) {
                let mut acts = input.clone();
                for part in &parts[..segments - 1] {
                    acts = part.layer_outputs(&acts).last().unwrap().clone();
                }
                assert_eq!(
                    parts.last().unwrap().classify(&acts),
                    deep.classify(&input),
                    "{segments} segments"
                );
            }
        }
    }

    #[test]
    fn rolled_and_series_agree_functionally() {
        let deep = deep_model(8);
        let ins = inputs(5);
        let soc = SocConfig::default();
        let rolled = run_rolled(&deep, &ins, &soc);
        let series = run_series(&deep, &ins, &soc);
        let reference: Vec<usize> = ins.iter().map(|i| deep.classify(i)).collect();
        assert_eq!(rolled.outputs, reference);
        assert_eq!(series.outputs, reference);
    }

    #[test]
    fn series_doubles_throughput_over_rollback() {
        let deep = deep_model(8);
        let ins = inputs(16);
        let soc = SocConfig::default();
        let rolled = run_rolled(&deep, &ins, &soc);
        let series = run_series(&deep, &ins, &soc);
        // Two cores hold all 8 layers resident: roughly 2× the rollback
        // throughput at steady state.
        assert!(
            series.steady_interval < rolled.steady_interval,
            "series {} vs rolled {}",
            series.steady_interval,
            rolled.steady_interval
        );
        assert!(series.total_cycles < rolled.total_cycles);
    }

    #[test]
    fn four_segment_series_pipelines_deeper() {
        let deep = deep_model(8);
        let ins = inputs(12);
        let soc = SocConfig::default();
        let (two, _) = run_series_n_traced(&deep, &ins, &soc, 2, TraceLevel::Counters);
        let (four, rec) = run_series_n_traced(&deep, &ins, &soc, 4, TraceLevel::Counters);
        let reference: Vec<usize> = ins.iter().map(|i| deep.classify(i)).collect();
        assert_eq!(four.outputs, reference);
        // Shorter segments drain faster between completions.
        assert!(
            four.steady_interval <= two.steady_interval,
            "4-seg {} vs 2-seg {}",
            four.steady_interval,
            two.steady_interval
        );
        // One phase lane per segment plus the link lane, with mid labels.
        assert!(rec.counters().get("core3.busy_cycles") > 0);
        assert!(rec
            .spans()
            .iter()
            .any(|e| matches!(&e.kind, ncpu_obs::EventKind::Phase { label, .. } if label == "mid")));
    }

    #[test]
    #[should_panic(expected = "interior")]
    fn split_bounds_checked() {
        split_model(&deep_model(4), 4);
    }

    #[test]
    fn bad_segment_counts_return_structured_errors() {
        let deep = deep_model(8);
        let ins = inputs(2);
        let soc = SocConfig::default();
        for segments in [0usize, 1, 9, 100] {
            let err = try_run_series_n_traced(&deep, &ins, &soc, segments, TraceLevel::Off)
                .expect_err("out-of-range segment count must not run");
            assert_eq!(err, DeepError::SegmentsOutOfRange { segments, layers: 8 });
        }
        let msg = DeepError::SegmentsOutOfRange { segments: 9, layers: 8 }.to_string();
        assert_eq!(msg, "series mode needs 2..=8 segments for a 8-layer model, got 9");
    }

    #[test]
    fn mismatched_input_width_returns_structured_error() {
        let deep = deep_model(8);
        let mut ins = inputs(3);
        ins[1] = BitVec::from_bools((0..32).map(|i| i % 2 == 0));
        let err = try_run_series_n_traced(&deep, &ins, &SocConfig::default(), 2, TraceLevel::Off)
            .expect_err("width mismatch must not run");
        assert_eq!(err, DeepError::InputWidthMismatch { image: 1, expected: 48, got: 32 });
        assert_eq!(err.to_string(), "input image 1 is 32 bits wide, the model expects 48");
    }

    #[test]
    fn try_variant_matches_panicking_variant_on_valid_input() {
        let deep = deep_model(8);
        let ins = inputs(4);
        let soc = SocConfig::default();
        let (run, _) = run_series_n_traced(&deep, &ins, &soc, 2, TraceLevel::Off);
        let (fallible, _) =
            try_run_series_n_traced(&deep, &ins, &soc, 2, TraceLevel::Off).unwrap();
        assert_eq!(run, fallible);
    }

    fn stall_only_plan() -> FaultPlan {
        FaultPlan {
            seed: 5,
            sram_flip_ppm: 0,
            dma_stall_ppm: 1_000_000,
            dma_stall_cycles: 500,
            dma_truncate_ppm: 0,
            core_hang_ppm: 0,
            watchdog_cycles: 0,
            max_retries: 3,
            backoff_cycles: 32,
            quarantine_after: 0,
        }
    }

    #[test]
    fn prologue_is_deterministic() {
        let plan = FaultPlan {
            sram_flip_ppm: 300_000,
            dma_truncate_ppm: 200_000,
            ..stall_only_plan()
        };
        let sizes = [64usize, 96, 128, 64];
        let soc = SocConfig::default();
        let a = deep_fault_prologue(&plan, 850, &sizes, &soc);
        let b = deep_fault_prologue(&plan, 850, &sizes, &soc);
        assert_eq!(a.arrivals, b.arrivals);
        assert_eq!(a.kept, b.kept);
        assert_eq!(a.dropped, b.dropped);
        assert_eq!(a.events, b.events);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.horizon, b.horizon);
    }

    #[test]
    fn prologue_stalls_delay_but_never_drop() {
        let sizes = [64usize; 5];
        let pro = deep_fault_prologue(&stall_only_plan(), 1000, &sizes, &SocConfig::default());
        assert_eq!(pro.kept, vec![0, 1, 2, 3, 4]);
        assert!(pro.dropped.is_empty());
        // A stall is benign: every image arrives, exactly one stall late.
        assert_eq!(pro.arrivals, vec![500; 5]);
        assert!(pro.counters.contains(&("fault.injected.dma_stall", 5)));
        assert!(pro.counters.contains(&("fault.items_dropped", 0)));
    }

    #[test]
    fn prologue_exhausted_retries_drop_every_image() {
        let plan = FaultPlan {
            sram_flip_ppm: 1_000_000,
            dma_stall_ppm: 0,
            dma_stall_cycles: 0,
            max_retries: 0,
            ..stall_only_plan()
        };
        let sizes = [64usize; 4];
        let pro = deep_fault_prologue(&plan, 900, &sizes, &SocConfig::default());
        assert!(pro.kept.is_empty());
        assert_eq!(pro.dropped, vec![0, 1, 2, 3]);
        assert!(pro.counters.contains(&("fault.items_dropped", 4)));
        assert!(pro.counters.contains(&("fault.retries", 0)));
        // Parity detection happens at the priced delivery cycle, so the
        // horizon extends past cycle 0 even though nothing ran.
        assert!(pro.horizon > 0);
        assert!(pro.events.windows(2).all(|w| w[0].0 <= w[1].0), "events sorted");
    }
}
