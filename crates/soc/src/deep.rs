//! Deeper networks than the physical array (paper Section VIII-A):
//! single-core layer rollback vs two NCPU cores connected in series.
//!
//! "In our NCPU SoC, deeper BNN with more layers can be supported by
//! rolling back the BNN operation or connecting two cores in series."
//! Rollback re-uses one core's four physical layers for all logical
//! layers (half the throughput); series mode splits the network across
//! both cores so each image streams front-half → link → back-half.

use ncpu_accel::{AccelConfig, Accelerator, BatchRun};
use ncpu_bnn::{BitVec, BnnLayer, BnnModel, Topology};
use ncpu_obs::{Recorder, TraceLevel};
use ncpu_sim::DmaEngine;

use crate::system::SocConfig;

/// Splits a deep model into `(front, back)` halves for series execution.
///
/// The front half's "classes" are its full final layer (every activation
/// bit crosses the inter-core link).
///
/// # Panics
///
/// Panics if the model has fewer than 2 layers or `split` is not inside
/// `1..layers`.
pub fn split_model(deep: &BnnModel, split: usize) -> (BnnModel, BnnModel) {
    let layers = deep.layers();
    assert!(layers.len() >= 2, "need at least two layers to split");
    assert!((1..layers.len()).contains(&split), "split must be interior");
    let front_layers: Vec<BnnLayer> = layers[..split].to_vec();
    let back_layers: Vec<BnnLayer> = layers[split..].to_vec();
    let front_widths: Vec<usize> = front_layers.iter().map(BnnLayer::neurons).collect();
    let back_widths: Vec<usize> = back_layers.iter().map(BnnLayer::neurons).collect();
    let front = BnnModel::new(
        Topology::new(
            deep.topology().input(),
            front_widths.clone(),
            *front_widths.last().expect("nonempty"),
        ),
        front_layers,
    );
    let back = BnnModel::new(
        Topology::new(
            *front_widths.last().expect("nonempty"),
            back_widths,
            deep.topology().classes(),
        ),
        back_layers,
    );
    (front, back)
}

/// Outcome of a deep-model batch run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeepRun {
    /// Predicted class per image.
    pub outputs: Vec<usize>,
    /// Makespan in cycles.
    pub total_cycles: u64,
    /// Latency of the first image.
    pub first_latency: u64,
    /// Steady-state cycles between completions (0 for batches < 2).
    pub steady_interval: u64,
}

impl From<BatchRun> for DeepRun {
    fn from(run: BatchRun) -> DeepRun {
        DeepRun {
            first_latency: run.first_latency(),
            steady_interval: run.steady_interval(),
            outputs: run.outputs,
            total_cycles: run.total_cycles,
        }
    }
}

/// Runs `deep` on one core by rolling logical layers onto the physical
/// array.
pub fn run_rolled(deep: &BnnModel, inputs: &[BitVec], soc: &SocConfig) -> DeepRun {
    run_rolled_traced(deep, inputs, soc, TraceLevel::Off).0
}

/// Like [`run_rolled`], returning the recorder with the rolled core's
/// per-image `bnn` spans on lane 0 and the run counters.
pub fn run_rolled_traced(
    deep: &BnnModel,
    inputs: &[BitVec],
    soc: &SocConfig,
    level: TraceLevel,
) -> (DeepRun, Recorder) {
    let mut rec = Recorder::new(level.at_least_counters());
    // The physical array: the paper's 4 × (widest layer) configuration.
    let widest = deep.layers().iter().map(BnnLayer::neurons).max().expect("layers");
    let physical = BnnModel::zeros(&Topology::paper(
        deep.topology().input(),
        widest,
        deep.topology().classes().min(widest),
    ));
    let mut accel = Accelerator::new(
        physical,
        AccelConfig { layer_pipelining: soc.layer_pipelining, ..AccelConfig::default() },
    );
    accel.set_obs_level(level.at_least_counters());
    let timed: Vec<(BitVec, u64)> = inputs.iter().map(|i| (i.clone(), 0)).collect();
    let run: DeepRun = accel.run_batch_deep(deep, &timed).into();
    rec.absorb(accel.obs_mut(), 0, 0);
    rec.set_counter("accel.busy_cycles", accel.stats().busy_cycles);
    rec.set_counter("run.makespan_cycles", run.total_cycles);
    rec.set_counter("run.items", inputs.len() as u64);
    (run, rec)
}

/// Runs `deep` split across two NCPU cores in series: core 0 computes the
/// front half, the activations cross the inter-core link (DMA-costed),
/// and core 1 computes the back half while core 0 starts the next image.
pub fn run_series(deep: &BnnModel, inputs: &[BitVec], soc: &SocConfig) -> DeepRun {
    run_series_traced(deep, inputs, soc, TraceLevel::Off).0
}

/// Like [`run_series`], returning the recorder with `front`/`back` phase
/// spans (lanes 0/1), the inter-core link's DMA spans (lane 2), and the
/// `deep.link_bytes` counter — the traffic the series split puts on the
/// fabric.
pub fn run_series_traced(
    deep: &BnnModel,
    inputs: &[BitVec],
    soc: &SocConfig,
    level: TraceLevel,
) -> (DeepRun, Recorder) {
    let mut rec = Recorder::new(level.at_least_counters());
    let split = deep.layers().len() / 2;
    let (front, back) = split_model(deep, split);
    let accel_cfg =
        AccelConfig { layer_pipelining: soc.layer_pipelining, ..AccelConfig::default() };
    let mut core0 = Accelerator::new(front.clone(), accel_cfg);
    let mut core1 = Accelerator::new(back.clone(), accel_cfg);
    let mut link = DmaEngine::new(soc.dma_bytes_per_cycle, soc.dma_setup_cycles);
    link.set_trace_level(level.at_least_counters());

    let timed: Vec<(BitVec, u64)> = inputs.iter().map(|i| (i.clone(), 0)).collect();
    let front_run = core0.run_batch_timed(&timed);
    for &(s, e) in &front_run.spans {
        rec.phase(0, "front", s, e);
    }

    // Front activations (computed functionally) cross the link as each
    // image completes the front half.
    let link_bytes = front.topology().layers().last().expect("layers").div_ceil(8) as u32;
    let mut back_inputs = Vec::with_capacity(inputs.len());
    for (input, &(_, end)) in inputs.iter().zip(
        front_run
            .spans
            .iter()
            .map(|&(s, e)| (s, e))
            .collect::<Vec<_>>()
            .iter(),
    ) {
        let acts = front.layer_outputs(input).last().expect("layers").clone();
        let delivered = link.schedule(end, link_bytes);
        back_inputs.push((acts, delivered));
    }
    let back_run = core1.run_batch_timed(&back_inputs);
    for &(s, e) in &back_run.spans {
        rec.phase(1, "back", s, e);
    }
    rec.set_counter("deep.link_bytes", u64::from(link_bytes) * inputs.len() as u64);
    crate::system::snapshot_dma(&mut rec, &mut link, 2);
    rec.set_counter("run.makespan_cycles", back_run.total_cycles);
    rec.set_counter("run.items", inputs.len() as u64);

    // Functional check: the series result must equal the whole model.
    debug_assert!(back_run
        .outputs
        .iter()
        .zip(inputs)
        .all(|(&o, i)| o == deep.classify(i)));

    let run = DeepRun {
        outputs: back_run.outputs.clone(),
        total_cycles: back_run.total_cycles,
        first_latency: back_run.spans.first().map_or(0, |&(_, e)| e),
        steady_interval: back_run.steady_interval(),
    };
    (run, rec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deep_model(layers: usize) -> BnnModel {
        let topo = Topology::new(48, vec![20; layers], 8);
        let built = (0..layers)
            .map(|l| {
                let n_in = topo.layer_input(l);
                let rows: Vec<BitVec> = (0..20)
                    .map(|j| {
                        BitVec::from_bools((0..n_in).map(|i| (i * 7 + j * 3 + l) % 5 < 2))
                    })
                    .collect();
                BnnLayer::new(rows, (0..20).map(|j| (j % 3) - 1).collect())
            })
            .collect();
        BnnModel::new(topo, built)
    }

    fn inputs(n: usize) -> Vec<BitVec> {
        (0..n).map(|k| BitVec::from_bools((0..48).map(|i| (i + k) % 3 == 0))).collect()
    }

    #[test]
    fn split_preserves_function() {
        let deep = deep_model(8);
        let (front, back) = split_model(&deep, 4);
        for input in inputs(6) {
            let acts = front.layer_outputs(&input).last().unwrap().clone();
            assert_eq!(back.classify(&acts), deep.classify(&input));
        }
    }

    #[test]
    fn rolled_and_series_agree_functionally() {
        let deep = deep_model(8);
        let ins = inputs(5);
        let soc = SocConfig::default();
        let rolled = run_rolled(&deep, &ins, &soc);
        let series = run_series(&deep, &ins, &soc);
        let reference: Vec<usize> = ins.iter().map(|i| deep.classify(i)).collect();
        assert_eq!(rolled.outputs, reference);
        assert_eq!(series.outputs, reference);
    }

    #[test]
    fn series_doubles_throughput_over_rollback() {
        let deep = deep_model(8);
        let ins = inputs(16);
        let soc = SocConfig::default();
        let rolled = run_rolled(&deep, &ins, &soc);
        let series = run_series(&deep, &ins, &soc);
        // Two cores hold all 8 layers resident: roughly 2× the rollback
        // throughput at steady state.
        assert!(
            series.steady_interval < rolled.steady_interval,
            "series {} vs rolled {}",
            series.steady_interval,
            rolled.steady_interval
        );
        assert!(series.total_cycles < rolled.total_cycles);
    }

    #[test]
    #[should_panic(expected = "interior")]
    fn split_bounds_checked() {
        split_model(&deep_model(4), 4);
    }
}
