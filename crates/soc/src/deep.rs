//! Deeper networks than the physical array (paper Section VIII-A):
//! single-core layer rollback vs NCPU cores connected in series.
//!
//! "In our NCPU SoC, deeper BNN with more layers can be supported by
//! rolling back the BNN operation or connecting two cores in series."
//! Rollback re-uses one core's four physical layers for all logical
//! layers (half the throughput); series mode splits the network across
//! N cores so each image streams segment 0 → link → … → segment N−1.
//! The paper builds the two-core split; [`run_series_n`] generalizes it
//! to any segment count.

use ncpu_accel::{Accelerator, BatchRun};
use ncpu_bnn::{BitVec, BnnLayer, BnnModel, Topology};
use ncpu_obs::{Recorder, TraceLevel};

use crate::fabric;
use crate::system::SocConfig;

/// Splits a deep model into `(front, back)` halves for series execution.
///
/// The front half's "classes" are its full final layer (every activation
/// bit crosses the inter-core link).
///
/// # Panics
///
/// Panics if the model has fewer than 2 layers or `split` is not inside
/// `1..layers`.
pub fn split_model(deep: &BnnModel, split: usize) -> (BnnModel, BnnModel) {
    let layers = deep.layers();
    assert!(layers.len() >= 2, "need at least two layers to split");
    assert!((1..layers.len()).contains(&split), "split must be interior");
    let front_layers: Vec<BnnLayer> = layers[..split].to_vec();
    let back_layers: Vec<BnnLayer> = layers[split..].to_vec();
    let front_widths: Vec<usize> = front_layers.iter().map(BnnLayer::neurons).collect();
    let back_widths: Vec<usize> = back_layers.iter().map(BnnLayer::neurons).collect();
    let front = BnnModel::new(
        Topology::new(
            deep.topology().input(),
            front_widths.clone(),
            *front_widths.last().expect("nonempty"),
        ),
        front_layers,
    );
    let back = BnnModel::new(
        Topology::new(
            *front_widths.last().expect("nonempty"),
            back_widths,
            deep.topology().classes(),
        ),
        back_layers,
    );
    (front, back)
}

/// Splits a deep model into `segments` contiguous sub-models for N-core
/// series execution. Segment boundaries fall at `layers * i / segments`,
/// so `segments == 2` reproduces [`split_model`] at `layers / 2` exactly.
/// Interior segments' "classes" are their full final layer (every
/// activation bit crosses the link).
///
/// # Panics
///
/// Panics unless `1 ≤ segments ≤ layers`.
pub fn split_model_n(deep: &BnnModel, segments: usize) -> Vec<BnnModel> {
    let layers = deep.layers().len();
    assert!(
        (1..=layers).contains(&segments),
        "need 1..=({layers}) segments, got {segments}"
    );
    if segments == 1 {
        return vec![deep.clone()];
    }
    let mut parts = Vec::with_capacity(segments);
    let mut rest = deep.clone();
    for s in 0..segments - 1 {
        // Boundary between global layer indices, re-based onto `rest`.
        let done = layers * s / segments;
        let cut = layers * (s + 1) / segments - done;
        let (seg, tail) = split_model(&rest, cut);
        parts.push(seg);
        rest = tail;
    }
    parts.push(rest);
    parts
}

/// Outcome of a deep-model batch run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeepRun {
    /// Predicted class per image.
    pub outputs: Vec<usize>,
    /// Makespan in cycles.
    pub total_cycles: u64,
    /// Latency of the first image.
    pub first_latency: u64,
    /// Steady-state cycles between completions (0 for batches < 2).
    pub steady_interval: u64,
}

impl From<BatchRun> for DeepRun {
    fn from(run: BatchRun) -> DeepRun {
        DeepRun {
            first_latency: run.first_latency(),
            steady_interval: run.steady_interval(),
            outputs: run.outputs,
            total_cycles: run.total_cycles,
        }
    }
}

/// Runs `deep` on one core by rolling logical layers onto the physical
/// array.
pub fn run_rolled(deep: &BnnModel, inputs: &[BitVec], soc: &SocConfig) -> DeepRun {
    run_rolled_traced(deep, inputs, soc, TraceLevel::Off).0
}

/// Like [`run_rolled`], returning the recorder with the rolled core's
/// per-image `bnn` spans on lane 0 and the run counters.
pub fn run_rolled_traced(
    deep: &BnnModel,
    inputs: &[BitVec],
    soc: &SocConfig,
    level: TraceLevel,
) -> (DeepRun, Recorder) {
    let mut rec = Recorder::new(level.at_least_counters());
    // The physical array: the paper's 4 × (widest layer) configuration.
    let widest = deep.layers().iter().map(BnnLayer::neurons).max().expect("layers");
    let physical = BnnModel::zeros(&Topology::paper(
        deep.topology().input(),
        widest,
        deep.topology().classes().min(widest),
    ));
    let mut accel = Accelerator::new(physical, fabric::accel_config(soc));
    accel.set_obs_level(level.at_least_counters());
    let timed: Vec<(BitVec, u64)> = inputs.iter().map(|i| (i.clone(), 0)).collect();
    let batch = accel.run_batch_deep(deep, &timed);
    // All images arrive at cycle 0, so latency is the completion cycle
    // and service is the image's traversal of the rolled array.
    for (i, &(start, end)) in batch.spans.iter().enumerate() {
        fabric::record_item_metrics(&mut rec, end, end - start, (inputs.len() - 1 - i) as u64);
    }
    let run: DeepRun = batch.into();
    rec.absorb(accel.obs_mut(), 0, 0);
    rec.set_counter("accel.busy_cycles", accel.stats().busy_cycles);
    fabric::set_run_counters(&mut rec, run.total_cycles, inputs.len());
    fabric::record_util_metric(&mut rec, accel.stats().busy_cycles, run.total_cycles);
    (run, rec)
}

/// Runs `deep` split across two NCPU cores in series: core 0 computes the
/// front half, the activations cross the inter-core link (DMA-costed),
/// and core 1 computes the back half while core 0 starts the next image.
pub fn run_series(deep: &BnnModel, inputs: &[BitVec], soc: &SocConfig) -> DeepRun {
    run_series_traced(deep, inputs, soc, TraceLevel::Off).0
}

/// Like [`run_series`], returning the recorder with `front`/`back` phase
/// spans (lanes 0/1), the inter-core link's DMA spans (lane 2), and the
/// `deep.link_bytes` counter — the traffic the series split puts on the
/// fabric.
pub fn run_series_traced(
    deep: &BnnModel,
    inputs: &[BitVec],
    soc: &SocConfig,
    level: TraceLevel,
) -> (DeepRun, Recorder) {
    run_series_n_traced(deep, inputs, soc, 2, level)
}

/// Runs `deep` split across `segments` NCPU cores in series (the N-core
/// generalization of [`run_series`]): each image streams through segment
/// 0, crosses the shared inter-core link (DMA-costed), and so on until
/// the final segment classifies it, with every segment pipelining across
/// images.
///
/// The recorder carries one phase lane per segment — labelled `front`,
/// `mid`…, `back` — the link's DMA spans on lane `segments`, per-segment
/// `core{s}.busy_cycles` counters, and the total `deep.link_bytes`.
///
/// # Panics
///
/// Panics unless `2 ≤ segments ≤ layers`.
pub fn run_series_n_traced(
    deep: &BnnModel,
    inputs: &[BitVec],
    soc: &SocConfig,
    segments: usize,
    level: TraceLevel,
) -> (DeepRun, Recorder) {
    assert!(segments >= 2, "series mode needs at least two segments");
    let mut rec = Recorder::new(level.at_least_counters());
    let parts = split_model_n(deep, segments);
    let mut link = fabric::new_dma(soc, level);

    let mut timed: Vec<(BitVec, u64)> = inputs.iter().map(|i| (i.clone(), 0)).collect();
    let mut total_link_bytes = 0u64;
    let mut last_run: Option<BatchRun> = None;
    let mut front_starts: Vec<u64> = Vec::new();
    let mut seg_busy: Vec<u64> = Vec::new();
    for (s, part) in parts.iter().enumerate() {
        let mut accel = Accelerator::new(part.clone(), fabric::accel_config(soc));
        let run = accel.run_batch_timed(&timed);
        let label = if s == 0 {
            "front"
        } else if s == parts.len() - 1 {
            "back"
        } else {
            "mid"
        };
        for &(start, end) in &run.spans {
            rec.phase(s as u16, label, start, end);
        }
        if s == 0 {
            front_starts = run.spans.iter().map(|&(start, _)| start).collect();
        }
        rec.set_counter(format!("core{s}.busy_cycles"), accel.stats().busy_cycles);
        seg_busy.push(accel.stats().busy_cycles);
        if s < parts.len() - 1 {
            // This segment's activations (computed functionally) cross the
            // link as each image completes, in image order.
            let link_bytes =
                part.topology().layers().last().expect("layers").div_ceil(8) as u32;
            total_link_bytes += u64::from(link_bytes) * inputs.len() as u64;
            let mut next = Vec::with_capacity(timed.len());
            for ((input, _), &(_, end)) in timed.iter().zip(&run.spans) {
                let acts = part.layer_outputs(input).last().expect("layers").clone();
                let delivered = link.schedule(end, link_bytes);
                next.push((acts, delivered));
            }
            timed = next;
        }
        last_run = Some(run);
    }
    let back_run = last_run.expect("at least two segments");
    rec.set_counter("deep.link_bytes", total_link_bytes);
    fabric::snapshot_dma(&mut rec, &mut link, segments as u16);
    fabric::set_run_counters(&mut rec, back_run.total_cycles, inputs.len());
    // All images arrive at cycle 0, so latency is the final-segment
    // completion cycle; service is the image's residency in the series
    // pipeline (first-segment entry to last-segment exit).
    for (i, &(_, end)) in back_run.spans.iter().enumerate() {
        let service = end - front_starts[i];
        fabric::record_item_metrics(&mut rec, end, service, (inputs.len() - 1 - i) as u64);
    }
    for &busy in &seg_busy {
        fabric::record_util_metric(&mut rec, busy, back_run.total_cycles);
    }

    // Functional check: the series result must equal the whole model.
    debug_assert!(back_run
        .outputs
        .iter()
        .zip(inputs)
        .all(|(&o, i)| o == deep.classify(i)));

    let run = DeepRun {
        outputs: back_run.outputs.clone(),
        total_cycles: back_run.total_cycles,
        first_latency: back_run.spans.first().map_or(0, |&(_, e)| e),
        steady_interval: back_run.steady_interval(),
    };
    (run, rec)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    pub(crate) fn deep_model(layers: usize) -> BnnModel {
        let topo = Topology::new(48, vec![20; layers], 8);
        let built = (0..layers)
            .map(|l| {
                let n_in = topo.layer_input(l);
                let rows: Vec<BitVec> = (0..20)
                    .map(|j| {
                        BitVec::from_bools((0..n_in).map(|i| (i * 7 + j * 3 + l) % 5 < 2))
                    })
                    .collect();
                BnnLayer::new(rows, (0..20).map(|j| (j % 3) - 1).collect())
            })
            .collect();
        BnnModel::new(topo, built)
    }

    pub(crate) fn inputs(n: usize) -> Vec<BitVec> {
        (0..n).map(|k| BitVec::from_bools((0..48).map(|i| (i + k) % 3 == 0))).collect()
    }

    #[test]
    fn split_preserves_function() {
        let deep = deep_model(8);
        let (front, back) = split_model(&deep, 4);
        for input in inputs(6) {
            let acts = front.layer_outputs(&input).last().unwrap().clone();
            assert_eq!(back.classify(&acts), deep.classify(&input));
        }
    }

    #[test]
    fn split_n_matches_two_way_split_and_preserves_function() {
        let deep = deep_model(8);
        let parts = split_model_n(&deep, 2);
        let (front, back) = split_model(&deep, 4);
        assert_eq!(parts[0].topology().layers(), front.topology().layers());
        assert_eq!(parts[1].topology().layers(), back.topology().layers());
        for segments in [1usize, 2, 3, 4] {
            let parts = split_model_n(&deep, segments);
            assert_eq!(parts.len(), segments);
            assert_eq!(
                parts.iter().map(|p| p.layers().len()).sum::<usize>(),
                deep.layers().len()
            );
            for input in inputs(3) {
                let mut acts = input.clone();
                for part in &parts[..segments - 1] {
                    acts = part.layer_outputs(&acts).last().unwrap().clone();
                }
                assert_eq!(
                    parts.last().unwrap().classify(&acts),
                    deep.classify(&input),
                    "{segments} segments"
                );
            }
        }
    }

    #[test]
    fn rolled_and_series_agree_functionally() {
        let deep = deep_model(8);
        let ins = inputs(5);
        let soc = SocConfig::default();
        let rolled = run_rolled(&deep, &ins, &soc);
        let series = run_series(&deep, &ins, &soc);
        let reference: Vec<usize> = ins.iter().map(|i| deep.classify(i)).collect();
        assert_eq!(rolled.outputs, reference);
        assert_eq!(series.outputs, reference);
    }

    #[test]
    fn series_doubles_throughput_over_rollback() {
        let deep = deep_model(8);
        let ins = inputs(16);
        let soc = SocConfig::default();
        let rolled = run_rolled(&deep, &ins, &soc);
        let series = run_series(&deep, &ins, &soc);
        // Two cores hold all 8 layers resident: roughly 2× the rollback
        // throughput at steady state.
        assert!(
            series.steady_interval < rolled.steady_interval,
            "series {} vs rolled {}",
            series.steady_interval,
            rolled.steady_interval
        );
        assert!(series.total_cycles < rolled.total_cycles);
    }

    #[test]
    fn four_segment_series_pipelines_deeper() {
        let deep = deep_model(8);
        let ins = inputs(12);
        let soc = SocConfig::default();
        let (two, _) = run_series_n_traced(&deep, &ins, &soc, 2, TraceLevel::Counters);
        let (four, rec) = run_series_n_traced(&deep, &ins, &soc, 4, TraceLevel::Counters);
        let reference: Vec<usize> = ins.iter().map(|i| deep.classify(i)).collect();
        assert_eq!(four.outputs, reference);
        // Shorter segments drain faster between completions.
        assert!(
            four.steady_interval <= two.steady_interval,
            "4-seg {} vs 2-seg {}",
            four.steady_interval,
            two.steady_interval
        );
        // One phase lane per segment plus the link lane, with mid labels.
        assert!(rec.counters().get("core3.busy_cycles") > 0);
        assert!(rec
            .spans()
            .iter()
            .any(|e| matches!(&e.kind, ncpu_obs::EventKind::Phase { label, .. } if label == "mid")));
    }

    #[test]
    #[should_panic(expected = "interior")]
    fn split_bounds_checked() {
        split_model(&deep_model(4), 4);
    }
}
