//! End-to-end execution under the three system configurations.
//!
//! The scheduling loops live here; everything the run paths share —
//! program construction, result mailboxes, DMA staging, cycle budgets,
//! report assembly — lives in [`crate::fabric`]. Prefer driving these
//! paths through [`crate::scenario`]: a [`crate::Scenario`] plus the
//! `Analytic` engine reaches exactly this code.

use ncpu_accel::Accelerator;
use ncpu_bnn::BitVec;
use ncpu_core::{NcpuCore, SharedL2, SwitchPolicy};
use ncpu_fault::FaultPlan;
use ncpu_isa::interp::Event;
use ncpu_obs::{Recorder, TraceLevel};
use ncpu_pipeline::{FlatMem, Pipeline};
use ncpu_sim::stats::Timeline;

use crate::fabric;
use crate::report::{CoreReport, RunReport};
use crate::topology::Topology;
use crate::usecase::UseCase;

/// Shared-fabric parameters of the SoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SocConfig {
    /// DMA bandwidth in bytes per cycle.
    pub dma_bytes_per_cycle: u32,
    /// DMA per-transfer setup latency in cycles.
    pub dma_setup_cycles: u64,
    /// NCPU mode-switch policy (the ablation flips this to `Naive`).
    pub switch_policy: SwitchPolicy,
    /// Whether the accelerator pipelines layers across images (ablation).
    pub layer_pipelining: bool,
}

impl Default for SocConfig {
    fn default() -> SocConfig {
        SocConfig {
            dma_bytes_per_cycle: 4,
            dma_setup_cycles: 16,
            switch_policy: SwitchPolicy::ZeroLatency,
            layer_pipelining: true,
        }
    }
}

/// Which system runs the use case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemConfig {
    /// Conventional heterogeneous pair: standalone CPU + BNN accelerator
    /// with DMA offload through the shared L2.
    Heterogeneous,
    /// `cores` reconfigurable NCPU cores (the paper builds 1 and 2; the
    /// schedulers accept any N ≥ 1).
    Ncpu {
        /// Number of NCPU cores (≥1).
        cores: usize,
    },
}

/// Runs `usecase` under `system`, returning the full report.
///
/// # Panics
///
/// Panics if a generated program faults — the programs are produced by
/// this workspace, so a fault is a bug, not an input condition.
pub fn run(usecase: &UseCase, system: SystemConfig, soc: &SocConfig) -> RunReport {
    run_traced(usecase, system, soc, TraceLevel::Counters).0
}

/// Runs `usecase` under `system` with observability at `level`, returning
/// the report together with the root [`Recorder`]: every core's phase
/// spans re-based onto the global clock, the DMA lane, the counter
/// registry, and (at [`TraceLevel::Full`]) per-cycle instant events.
///
/// The recorder always runs at `Counters` or above — report timelines are
/// derived from its span events.
///
/// # Panics
///
/// Panics if a generated program faults — the programs are produced by
/// this workspace, so a fault is a bug, not an input condition.
pub fn run_traced(
    usecase: &UseCase,
    system: SystemConfig,
    soc: &SocConfig,
    level: TraceLevel,
) -> (RunReport, Recorder) {
    match system {
        SystemConfig::Heterogeneous => run_heterogeneous(usecase, soc, level),
        SystemConfig::Ncpu { cores } => {
            run_ncpu(usecase, &Topology::homogeneous(cores), soc, level)
        }
    }
}

/// Like [`run_traced`], but with a [`FaultPlan`] bound to an operating
/// point (`millivolts` scales the SRAM soft-error rate).
///
/// The NCPU scheduler prices recovery *analytically*: every dispatch is
/// resolved through the shared fault layer (`fabric::resolve_dispatch`),
/// so retries, backoff, drops and quarantine re-scheduling enter the
/// analytic makespan without a cycle-level walk. Two modeling limits,
/// by design: the analytic engine runs items atomically, so its
/// watchdog prices injected `CoreHang` faults only (a genuinely
/// long-running item is never aborted mid-flight — use the lock-step
/// engine to study that); and the heterogeneous baseline ignores the
/// plan entirely (the paper's reliability story is about the NCPU's
/// low-voltage SRAM operating points).
///
/// # Panics
///
/// Panics if a generated program faults (a workspace bug).
pub fn run_traced_faulted(
    usecase: &UseCase,
    system: SystemConfig,
    soc: &SocConfig,
    level: TraceLevel,
    plan: &FaultPlan,
    millivolts: u32,
) -> (RunReport, Recorder) {
    let topo = match system {
        SystemConfig::Ncpu { cores } => Topology::homogeneous(cores),
        SystemConfig::Heterogeneous => Topology::homogeneous(1),
    };
    run_traced_faulted_topo(usecase, system, soc, level, plan, millivolts, &topo)
}

/// Like [`run_traced_faulted`], but scheduling over an explicit
/// [`Topology`] (roles, per-core DVFS points, L2 banking, scheduler).
/// `Topology::homogeneous(cores)` reproduces [`run_traced_faulted`]
/// byte-for-byte.
#[allow(clippy::too_many_arguments)]
pub fn run_traced_faulted_topo(
    usecase: &UseCase,
    system: SystemConfig,
    soc: &SocConfig,
    level: TraceLevel,
    plan: &FaultPlan,
    millivolts: u32,
    topo: &Topology,
) -> (RunReport, Recorder) {
    match system {
        SystemConfig::Heterogeneous => run_heterogeneous(usecase, soc, level),
        SystemConfig::Ncpu { .. } if plan.is_active() => {
            run_ncpu_faulted(usecase, topo, soc, level, plan, millivolts)
        }
        SystemConfig::Ncpu { .. } => run_ncpu(usecase, topo, soc, level),
    }
}

/// The analytic NCPU scheduler with an active fault plan: per-core
/// clocks advance in global time order (so shared DMA bookings happen
/// in arrival order), each dispatch resolves through the fault layer,
/// and a quarantined core's queue re-schedules round-robin onto the
/// healthy ones.
fn run_ncpu_faulted(
    usecase: &UseCase,
    topo: &Topology,
    soc: &SocConfig,
    level: TraceLevel,
    plan: &FaultPlan,
    millivolts: u32,
) -> (RunReport, Recorder) {
    let cores = topo.cores();
    let mut rec = Recorder::new(level.at_least_counters());
    let (l2, mut pool, programs) = fabric::ncpu_pool(usecase, soc, level, cores);
    let mut dma = fabric::new_dma(soc, level);
    let items = usecase.items().len();
    let mut ctl = fabric::FaultCtl::new(plan, millivolts, items, topo);
    let mut now = vec![0u64; cores];
    let mut busy = vec![0u64; cores];
    // Items complete out of order once drops and re-scheduling kick in,
    // so predictions are written by index rather than pushed.
    let mut predictions = vec![0usize; items];
    let dispatch_plan = topo.plan(usecase, soc);
    let mut queues: Vec<Vec<(usize, u64)>> = (0..cores)
        .map(|c| (0..items).filter(|&i| dispatch_plan[i] == c).map(|i| (i, 0)).collect())
        .collect();
    let mut at = vec![0usize; cores];

    loop {
        // Always advance the core that can dispatch earliest (ties to
        // the lowest-numbered core), so fault draws and DMA bookings
        // happen in a deterministic global-time order.
        let next = (0..cores)
            .filter(|&c| at[c] < queues[c].len())
            .map(|c| (now[c].max(queues[c][at[c]].1), c))
            .min();
        let Some((dispatch, c)) = next else { break };
        let (idx, _) = queues[c][at[c]];
        let staged = &usecase.items()[idx].staged;
        match fabric::resolve_dispatch(
            Some(&mut ctl),
            c,
            idx,
            staged,
            dispatch,
            true,
            &mut pool[c],
            &mut dma,
            &mut rec,
            None,
        ) {
            fabric::Resolution::Run { exec_start } => {
                let (end, used) =
                    fabric::run_item_staged(&mut pool[c], &programs[c], exec_start, &mut rec, c as u16);
                now[c] = end;
                busy[c] += used;
                let depth = (queues[c].len() - at[c] - 1) as u64;
                fabric::record_item_metrics(&mut rec, end - dispatch, used, depth);
                rec.metric("item.retries", ctl.item_retries(idx));
                predictions[idx] = l2
                    .read_word(fabric::result_addr(c))
                    .expect("result staged by program") as usize;
                at[c] += 1;
            }
            fabric::Resolution::Dropped { at: t } => {
                now[c] = now[c].max(t);
                predictions[idx] = fabric::DROPPED_PREDICTION;
                rec.metric("item.retries", ctl.item_retries(idx));
                at[c] += 1;
            }
            fabric::Resolution::Quarantined { at: t } => {
                now[c] = now[c].max(t);
                let moved: Vec<usize> =
                    queues[c].split_off(at[c]).into_iter().map(|(i, _)| i).collect();
                let mut defer = None;
                let homes = fabric::reassign_items(&mut ctl, c, &moved, t, &mut rec, &mut defer);
                for (item, target) in homes {
                    match target {
                        Some(tg) => queues[tg].push((item, t + 1)),
                        None => predictions[item] = fabric::DROPPED_PREDICTION,
                    }
                }
            }
        }
    }

    let makespan = now.iter().copied().max().unwrap_or(0);
    ctl.write_counters(&mut rec);
    let report = fabric::assemble_ncpu_report(
        &mut rec,
        &mut dma,
        &pool,
        &busy,
        usecase,
        topo,
        fabric::RunOutcome { config: format!("{cores}x ncpu"), makespan, predictions },
    );
    (report, rec)
}

pub(crate) fn run_ncpu(
    usecase: &UseCase,
    topo: &Topology,
    soc: &SocConfig,
    level: TraceLevel,
) -> (RunReport, Recorder) {
    let cores = topo.cores();
    let mut rec = Recorder::new(level.at_least_counters());
    let (l2, mut pool, programs) = fabric::ncpu_pool(usecase, soc, level, cores);
    let mut dma = fabric::new_dma(soc, level);
    let mut now = vec![0u64; cores];
    let mut busy = vec![0u64; cores];
    let mut predictions = Vec::with_capacity(usecase.items().len());

    // The scheduler's upfront plan (round-robin `i % cores` on the
    // homogeneous static default).
    let plan = topo.plan(usecase, soc);
    for (i, item) in usecase.items().iter().enumerate() {
        let c = plan[i];
        let dispatch = now[c];
        let (end, used) = fabric::run_item(
            &mut pool[c],
            &programs[c],
            &item.staged,
            now[c],
            &mut dma,
            &mut rec,
            c as u16,
        );
        now[c] = end;
        busy[c] += used;
        // Items still waiting behind this one on core `c` under the plan.
        let depth = crate::topology::depth_behind(&plan, i);
        fabric::record_item_metrics(&mut rec, end - dispatch, used, depth as u64);
        predictions.push(
            l2.read_word(fabric::result_addr(c)).expect("result staged by program") as usize,
        );
    }

    let makespan = now.iter().copied().max().unwrap_or(0);
    let report = fabric::assemble_ncpu_report(
        &mut rec,
        &mut dma,
        &pool,
        &busy,
        usecase,
        topo,
        fabric::RunOutcome { config: format!("{cores}x ncpu"), makespan, predictions },
    );
    (report, rec)
}

/// Runs two *different* use cases concurrently, one per NCPU core (paper
/// Section VI-A: the cores "operate independently for different workload
/// tasks"), sharing the L2 and DMA fabric. Items are processed in global
/// time order so DMA requests queue in arrival order. Returns one report
/// per core.
///
/// # Panics
///
/// Panics if a generated program faults (a workspace bug).
pub fn run_independent(a: &UseCase, b: &UseCase, soc: &SocConfig) -> (RunReport, RunReport) {
    let l2 = SharedL2::new(fabric::L2_BYTES);
    let mut dma = fabric::new_dma(soc, TraceLevel::Off);

    struct CoreState {
        core: NcpuCore,
        program: Vec<u32>,
        next_item: usize,
        now: u64,
        busy: u64,
        rec: Recorder,
        predictions: Vec<usize>,
    }
    let usecases = [a, b];
    let mut states: Vec<CoreState> = usecases
        .iter()
        .enumerate()
        .map(|(c, uc)| {
            let core = fabric::ncpu_core(uc, soc, TraceLevel::Counters, l2.clone());
            let program = fabric::ncpu_program(uc, &core, fabric::result_addr(c));
            CoreState {
                core,
                program,
                next_item: 0,
                now: 0,
                busy: 0,
                rec: Recorder::new(TraceLevel::Counters),
                predictions: Vec::new(),
            }
        })
        .collect();

    // Global-time-ordered scheduling: always advance the core whose clock
    // is furthest behind, so shared-DMA bookings happen in arrival order.
    loop {
        let ready = (0..states.len())
            .filter(|&c| states[c].next_item < usecases[c].items().len())
            .min_by_key(|&c| states[c].now);
        let Some(c) = ready else { break };
        let item = &usecases[c].items()[states[c].next_item];
        let st = &mut states[c];
        let dispatch = st.now;
        let (end, used) = fabric::run_item(
            &mut st.core,
            &st.program,
            &item.staged,
            st.now,
            &mut dma,
            &mut st.rec,
            c as u16,
        );
        st.now = end;
        st.busy += used;
        st.next_item += 1;
        let depth = (usecases[c].items().len() - st.next_item) as u64;
        fabric::record_item_metrics(&mut st.rec, end - dispatch, used, depth);
        st.predictions.push(
            l2.read_word(fabric::result_addr(c)).expect("result staged by program") as usize,
        );
    }

    let mut reports: Vec<RunReport> = states
        .into_iter()
        .enumerate()
        .map(|(c, mut st)| {
            fabric::record_util_metric(&mut st.rec, st.busy, st.now);
            RunReport {
                config: format!("independent core {c}"),
                makespan: st.now,
                cores: vec![CoreReport {
                    role: format!("ncpu{c}"),
                    timeline: Timeline::from_obs_events(st.rec.spans(), c as u16),
                    busy_cycles: st.busy,
                }],
                predictions: st.predictions,
                labels: usecases[c].items().iter().map(|i| i.label).collect(),
                metrics: st.rec.metrics().clone(),
            }
        })
        .collect();
    let second = reports.pop().expect("two reports");
    let first = reports.pop().expect("two reports");
    (first, second)
}

pub(crate) fn run_heterogeneous(
    usecase: &UseCase,
    soc: &SocConfig,
    level: TraceLevel,
) -> (RunReport, Recorder) {
    let mut rec = Recorder::new(level.at_least_counters());
    let program = fabric::hetero_program(usecase);
    let mut cpu = Pipeline::new(program, FlatMem::with_l2(16 * 1024, fabric::L2_BYTES));
    cpu.set_obs_level(level);
    let mut accel = Accelerator::new(usecase.model().clone(), fabric::accel_config(soc));
    // The batch runs on globally-stamped availability times, so the
    // accelerator's spans need no re-basing when absorbed below.
    accel.set_obs_level(level.at_least_counters());
    let mut dma = fabric::new_dma(soc, level);

    let input_bits = usecase.model().topology().input();
    let packed_bytes = input_bits.div_ceil(8);

    let mut t_cpu = 0u64;
    let mut cpu_busy = 0u64;
    let mut queued: Vec<(BitVec, u64)> = Vec::new();
    let mut dispatches: Vec<u64> = Vec::new();

    for item in usecase.items() {
        // The scheduler turns to this item as soon as the CPU frees up.
        dispatches.push(t_cpu);
        // Stage the raw item (same DMA the NCPU flow uses).
        let start = if item.staged.is_empty() {
            t_cpu
        } else {
            let delivered = dma.schedule(t_cpu, item.staged.len() as u32);
            cpu.mem_mut().local_mut()[..item.staged.len()].copy_from_slice(&item.staged);
            delivered
        };
        cpu.restart_at(0);
        let before = cpu.stats().cycles;
        // Pre-process + copy-out, up to the offload trigger…
        let ev = cpu.run_until_event(fabric::ITEM_BUDGET).expect("offload program runs");
        assert_eq!(ev, Event::TriggerBnn, "offload program must trigger the accelerator");
        let t_trigger = start + (cpu.stats().cycles - before);
        // …then drain to halt.
        cpu.resume();
        cpu.run(fabric::ITEM_BUDGET).expect("offload program halts");
        let used = cpu.stats().cycles - before;
        rec.phase(0, "cpu", start, start + used);
        rec.absorb(cpu.obs_mut(), 0, start as i64 - before as i64);
        cpu_busy += used;
        t_cpu = start + used;

        // DMA the packed input from the CPU's local memory through the L2
        // into the accelerator image memory (the conventional offload).
        let delivered = dma.schedule(t_trigger, packed_bytes as u32);
        let pack_at = fabric::hetero_pack_offset(usecase) as usize;
        let local = cpu.mem().local();
        let input =
            BitVec::from_bytes(&local[pack_at..pack_at + packed_bytes], input_bits);
        queued.push((input, delivered));
    }

    let batch = accel.run_batch_timed(&queued);
    rec.absorb(accel.obs_mut(), 1, 0);
    let makespan = t_cpu.max(batch.total_cycles);

    // Per-item metrics: an item is done when its accelerator traversal
    // finishes; it was in service from CPU pre-processing dispatch until
    // then, and `depth` counts the items queued behind it.
    let items = usecase.items().len();
    for (i, &(accel_start, accel_end)) in batch.spans.iter().enumerate() {
        let latency = accel_end - dispatches[i];
        let service = accel_end - accel_start;
        let depth = (items - 1 - i) as u64;
        fabric::record_item_metrics(&mut rec, latency, service, depth);
    }

    let ps = cpu.stats();
    rec.set_counter("cpu.cycles", ps.cycles);
    rec.set_counter("cpu.retired", ps.retired);
    rec.set_counter("cpu.stall.load_use", ps.load_use_stalls);
    rec.set_counter("cpu.stall.flush", ps.flush_cycles);
    rec.set_counter("cpu.stall.ex", ps.ex_stall_cycles);
    rec.set_counter("cpu.stall.mem", ps.mem_stall_cycles);
    let accel_stats = accel.stats();
    rec.set_counter("accel.images_inferred", accel_stats.images);
    rec.set_counter("accel.busy_cycles", accel_stats.busy_cycles);
    rec.set_counter("accel.macs", accel_stats.macs);
    fabric::snapshot_dma(&mut rec, &mut dma, 2);
    fabric::set_run_counters(&mut rec, makespan, usecase.items().len());
    fabric::record_util_metric(&mut rec, cpu_busy, makespan);
    fabric::record_util_metric(&mut rec, accel_stats.busy_cycles, makespan);

    let report = RunReport {
        config: "heterogeneous".to_string(),
        makespan,
        cores: vec![
            CoreReport {
                role: "cpu".to_string(),
                timeline: Timeline::from_obs_events(rec.spans(), 0),
                busy_cycles: cpu_busy,
            },
            CoreReport {
                role: "bnn-accel".to_string(),
                timeline: Timeline::from_obs_events(rec.spans(), 1),
                busy_cycles: accel_stats.busy_cycles,
            },
        ],
        predictions: batch.outputs,
        labels: usecase.items().iter().map(|i| i.label).collect(),
        metrics: rec.metrics().clone(),
    };
    (report, rec)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::usecase::UseCase;

    pub(crate) use crate::usecase::pseudo_model;

    #[test]
    fn parametric_two_ncpu_beats_baseline_per_paper_fig13() {
        let model = pseudo_model(784, 100, 10);
        let soc = SocConfig::default();
        for (fraction, expect) in [(0.4, 0.285), (0.7, 0.412)] {
            let uc = UseCase::parametric(fraction, 2, model.clone());
            let base = run(&uc, SystemConfig::Heterogeneous, &soc);
            let dual = run(&uc, SystemConfig::Ncpu { cores: 2 }, &soc);
            let imp = dual.improvement_over(&base);
            assert!(
                (imp - expect).abs() < 0.06,
                "fraction {fraction}: improvement {imp:.3} vs paper {expect}"
            );
        }
    }

    #[test]
    fn predictions_agree_across_systems() {
        let model = pseudo_model(784, 20, 10);
        let uc = UseCase::parametric(0.5, 4, model);
        let soc = SocConfig::default();
        let a = run(&uc, SystemConfig::Heterogeneous, &soc);
        let b = run(&uc, SystemConfig::Ncpu { cores: 1 }, &soc);
        let c = run(&uc, SystemConfig::Ncpu { cores: 2 }, &soc);
        assert_eq!(a.predictions, b.predictions);
        assert_eq!(a.predictions, c.predictions);
    }

    #[test]
    fn dual_ncpu_sustains_high_utilization() {
        let model = pseudo_model(784, 50, 10);
        let uc = UseCase::parametric(0.7, 8, model);
        let soc = SocConfig::default();
        let dual = run(&uc, SystemConfig::Ncpu { cores: 2 }, &soc);
        for core in &dual.cores {
            assert!(
                core.utilization(dual.makespan) > 0.95,
                "{} utilization {:.3}",
                core.role,
                core.utilization(dual.makespan)
            );
        }
        let base = run(&uc, SystemConfig::Heterogeneous, &soc);
        let cpu_util = base.cores[0].utilization(base.makespan);
        let accel_util = base.cores[1].utilization(base.makespan);
        assert!(cpu_util > accel_util, "baseline accelerator must be under-utilized");
    }

    #[test]
    fn four_ncpu_cores_scale_the_parametric_sweep() {
        let model = pseudo_model(784, 50, 10);
        let uc = UseCase::parametric(0.7, 8, model);
        let soc = SocConfig::default();
        let two = run(&uc, SystemConfig::Ncpu { cores: 2 }, &soc);
        let four = run(&uc, SystemConfig::Ncpu { cores: 4 }, &soc);
        assert_eq!(two.predictions, four.predictions, "same answers at any width");
        assert_eq!(four.cores.len(), 4);
        // 8 items over 4 cores halve the 2-core makespan (modulo DMA
        // staging skew, which the parametric use case does not have).
        assert!(
            four.makespan < two.makespan,
            "4 cores {} vs 2 cores {}",
            four.makespan,
            two.makespan
        );
    }

    #[test]
    fn single_ncpu_is_modestly_slower_than_baseline() {
        let model = pseudo_model(784, 100, 10);
        let uc = UseCase::parametric(0.7, 2, model);
        let soc = SocConfig::default();
        let base = run(&uc, SystemConfig::Heterogeneous, &soc);
        let single = run(&uc, SystemConfig::Ncpu { cores: 1 }, &soc);
        let delta = single.makespan as f64 / base.makespan as f64 - 1.0;
        // Paper Fig. 17: +13.8% for the image case at batch 2.
        assert!((0.0..0.35).contains(&delta), "single-NCPU delta {delta}");
    }

    #[test]
    fn traced_run_matches_plain_run_and_snapshots_counters() {
        let model = pseudo_model(784, 20, 10);
        let uc = UseCase::parametric(0.5, 2, model);
        let soc = SocConfig::default();
        let (report, rec) =
            run_traced(&uc, SystemConfig::Ncpu { cores: 2 }, &soc, TraceLevel::Full);
        assert_eq!(rec.counters().get("run.makespan_cycles"), report.makespan);
        assert_eq!(rec.counters().get("run.items"), 2);
        assert!(rec.counters().get("core0.retired") > 0);
        assert!(rec.counters().get("core1.cycles") > 0);
        assert!(
            rec.events()
                .iter()
                .any(|e| matches!(e.kind, ncpu_obs::EventKind::Retire { .. })),
            "Full level must carry retire instants"
        );
        // Report timelines are views over the same span stream.
        for (c, core) in report.cores.iter().enumerate() {
            let tl = Timeline::from_obs_events(rec.spans(), c as u16);
            assert_eq!(core.timeline.spans().len(), tl.spans().len());
            assert!(!core.timeline.spans().is_empty());
        }
        // Tracing must not perturb the simulation itself.
        let plain = run(&uc, SystemConfig::Ncpu { cores: 2 }, &soc);
        assert_eq!(plain.makespan, report.makespan);
        assert_eq!(plain.predictions, report.predictions);
    }

    #[test]
    fn traced_heterogeneous_records_both_lanes_and_dma() {
        let model = pseudo_model(784, 20, 10);
        let uc = UseCase::parametric(0.5, 2, model);
        let soc = SocConfig::default();
        let (report, rec) =
            run_traced(&uc, SystemConfig::Heterogeneous, &soc, TraceLevel::Counters);
        assert!(!report.cores[0].timeline.spans().is_empty(), "cpu lane");
        assert!(!report.cores[1].timeline.spans().is_empty(), "accel lane");
        assert!(rec.counters().get("cpu.retired") > 0);
        assert_eq!(rec.counters().get("accel.images_inferred"), 2);
        assert!(
            rec.spans()
                .iter()
                .any(|e| matches!(e.kind, ncpu_obs::EventKind::Dma { .. })),
            "offload DMA must appear on the trace"
        );
    }

    #[test]
    fn motion_use_case_end_to_end() {
        let uc = UseCase::motion(2, 6, 3);
        let soc = SocConfig::default();
        let base = run(&uc, SystemConfig::Heterogeneous, &soc);
        let dual = run(&uc, SystemConfig::Ncpu { cores: 2 }, &soc);
        assert_eq!(base.predictions.len(), 2);
        assert_eq!(base.predictions, dual.predictions, "same classifier, same answers");
        assert!(dual.makespan < base.makespan, "two cores beat the baseline");
    }
}

#[cfg(test)]
mod independent_tests {
    use super::*;
    use crate::usecase::UseCase;

    #[test]
    fn independent_cores_run_different_tasks() {
        let motion = UseCase::motion(2, 4, 2);
        let spin = UseCase::parametric(
            0.5,
            3,
            crate::system::tests::pseudo_model(784, 20, 10),
        );
        let (a, b) = run_independent(&motion, &spin, &SocConfig::default());
        assert_eq!(a.predictions.len(), 2);
        assert_eq!(b.predictions.len(), 3);
        assert!(a.makespan > 0 && b.makespan > 0);
        // Each core's report carries exactly its own role.
        assert_eq!(a.cores[0].role, "ncpu0");
        assert_eq!(b.cores[0].role, "ncpu1");
        // Results match a solo run of the same use case (sharing the
        // fabric does not change answers).
        let solo = run(&motion, SystemConfig::Ncpu { cores: 1 }, &SocConfig::default());
        assert_eq!(a.predictions, solo.predictions);
    }
}
