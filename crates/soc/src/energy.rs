//! Energy integration and power-trace synthesis over run reports.
//!
//! Converts the cycle-domain timelines of a [`RunReport`] into the paper's
//! power traces (Fig. 16) and energy comparisons (Fig. 12(b), the 74%
//! equivalent energy saving of Section VII-C).

use ncpu_power::{AreaModel, CoreKind, PowerModel, SystemAreas};
use ncpu_sim::PowerTrace;

use crate::report::RunReport;

/// Per-mode power lookup for one core role at a fixed voltage.
fn span_power_mw(pm: &PowerModel, role: &str, label: &str, v: f64, areas: &SystemAreas) -> f64 {
    let leak = pm.leakage_mw(areas, v);
    let kind = match (role.starts_with("ncpu"), label) {
        (true, "bnn") => Some(CoreKind::NcpuBnnMode),
        (true, _) => Some(CoreKind::NcpuCpuMode),
        (false, "bnn") => Some(CoreKind::StandaloneBnn),
        (false, _) => Some(CoreKind::StandaloneCpu),
    };
    match (kind, label) {
        (_, "switch") => leak, // reconfiguration: clocks gated, leakage only
        (Some(k), _) => pm.dynamic_mw(k, v, 1.0) + leak,
        (None, _) => leak,
    }
}

fn areas_for_role(am: &AreaModel, role: &str, neurons: usize) -> SystemAreas {
    // Roles are prefix-classed: "ncpu{c}" reconfigurable cores,
    // "bnn-accel"/"bnn{c}" fixed BNN silicon, anything else ("cpu",
    // "cpu{c}", "host") plain CPU silicon.
    if role.starts_with("ncpu") {
        am.ncpu_core(neurons)
    } else if role.starts_with("bnn") {
        am.bnn_core(neurons)
    } else {
        am.cpu_core()
    }
}

/// One core's power trace at voltage `v`: leakage over the makespan plus
/// dynamic power during active spans.
fn core_trace(
    core: &crate::report::CoreReport,
    makespan: u64,
    pm: &PowerModel,
    am: &AreaModel,
    neurons: usize,
    v: f64,
    bucket_cycles: u64,
) -> PowerTrace {
    let mut trace = PowerTrace::new(bucket_cycles);
    let areas = areas_for_role(am, &core.role, neurons);
    trace.add_span(0, makespan, pm.leakage_mw(&areas, v));
    for span in core.timeline.spans() {
        let p = span_power_mw(pm, &core.role, &span.label, v, &areas) - pm.leakage_mw(&areas, v);
        if p > 0.0 {
            trace.add_span(span.start, span.end, p);
        }
    }
    trace
}

/// Builds a per-core power trace of the run at voltage `v` (Fig. 16).
///
/// Returns one trace per core in report order; idle gaps draw leakage
/// only.
pub fn power_traces(
    report: &RunReport,
    pm: &PowerModel,
    am: &AreaModel,
    neurons: usize,
    v: f64,
    bucket_cycles: u64,
) -> Vec<PowerTrace> {
    report
        .cores
        .iter()
        .map(|core| core_trace(core, report.makespan, pm, am, neurons, v, bucket_cycles))
        .collect()
}

/// Total energy of the run in µJ at voltage `v`.
pub fn run_energy_uj(
    report: &RunReport,
    pm: &PowerModel,
    am: &AreaModel,
    neurons: usize,
    v: f64,
) -> f64 {
    let f = pm.dvfs.freq_hz(v, CoreKind::StandaloneCpu);
    let traces = power_traces(report, pm, am, neurons, v, 1024);
    let mw_cycles: f64 = traces.iter().map(PowerTrace::total_energy_mw_cycles).sum();
    // mW · cycles / (cycles/s) = mJ; ×1e3 = µJ.
    mw_cycles / f * 1.0e3
}

/// Total energy of the run in µJ with each core integrated at its own
/// DVFS operating point from `topo` (cores without a per-core point use
/// `scenario_volts`). With a homogeneous topology this equals
/// [`run_energy_uj`] at `scenario_volts` exactly.
///
/// # Panics
///
/// Panics if the report's core count does not match the topology's.
pub fn run_energy_uj_topo(
    report: &RunReport,
    pm: &PowerModel,
    am: &AreaModel,
    neurons: usize,
    scenario_volts: f64,
    topo: &crate::topology::Topology,
) -> f64 {
    assert_eq!(
        report.cores.len(),
        topo.cores(),
        "the report and topology must describe the same fleet"
    );
    report
        .cores
        .iter()
        .zip(topo.core_volts(scenario_volts))
        .map(|(core, v)| {
            let f = pm.dvfs.freq_hz(v, CoreKind::StandaloneCpu);
            let trace = core_trace(core, report.makespan, pm, am, neurons, v, 1024);
            trace.total_energy_mw_cycles() / f * 1.0e3
        })
        .sum()
}

/// The paper's performance→energy conversion (Section VII-C): scale the
/// faster system's voltage down until its latency matches the baseline's,
/// then compare energies. Returns the fractional energy saving.
///
/// # Panics
///
/// Panics if `faster` is not actually faster.
pub fn equivalent_energy_saving(
    faster: &RunReport,
    baseline: &RunReport,
    pm: &PowerModel,
    am: &AreaModel,
    neurons: usize,
    v_nominal: f64,
) -> f64 {
    assert!(
        faster.makespan < baseline.makespan,
        "voltage scaling needs latency headroom"
    );
    let f_nom = pm.dvfs.freq_hz(v_nominal, CoreKind::StandaloneCpu);
    // Need f(v) such that faster.makespan / f(v) == baseline.makespan / f_nom.
    let target = f_nom * faster.makespan as f64 / baseline.makespan as f64;
    // Bisect the monotone f(V) curve.
    let (mut lo, mut hi) = (0.4f64, v_nominal);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if pm.dvfs.freq_hz(mid, CoreKind::StandaloneCpu) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let v_scaled = 0.5 * (lo + hi);
    let e_base = run_energy_uj(baseline, pm, am, neurons, v_nominal);
    let e_fast = run_energy_uj(faster, pm, am, neurons, v_scaled);
    1.0 - e_fast / e_base
}

/// Convenience: energy of a single-core task of `cycles` cycles in mode
/// `kind` at voltage `v`, in µJ (used by Table I).
pub fn task_energy_uj(
    pm: &PowerModel,
    kind: CoreKind,
    areas: &SystemAreas,
    cycles: u64,
    v: f64,
) -> f64 {
    let e_pj = pm.energy_per_cycle_pj(kind, areas, v, 1.0);
    e_pj * cycles as f64 * 1.0e-6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::CoreReport;
    use ncpu_sim::stats::Timeline;

    fn fake_report(makespan: u64, busy: u64, role: &str, label: &str) -> RunReport {
        let mut t = Timeline::new();
        t.record(label, 0, busy);
        RunReport {
            config: "test".into(),
            makespan,
            cores: vec![CoreReport { role: role.into(), timeline: t, busy_cycles: busy }],
            predictions: vec![],
            labels: vec![],
            metrics: ncpu_obs::MetricsReport::new(),
        }
    }

    #[test]
    fn traces_cover_the_makespan() {
        let r = fake_report(10_000, 6_000, "ncpu0", "cpu");
        let pm = PowerModel::default();
        let am = AreaModel::default();
        let traces = power_traces(&r, &pm, &am, 100, 1.0, 1000);
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].len(), 10);
        let s = traces[0].samples();
        assert!(s[0] > s[9], "busy buckets draw more than idle ones");
    }

    #[test]
    fn bnn_spans_draw_more_than_cpu_spans() {
        let pm = PowerModel::default();
        let am = AreaModel::default();
        let cpu = run_energy_uj(&fake_report(1000, 1000, "ncpu0", "cpu"), &pm, &am, 100, 1.0);
        let bnn = run_energy_uj(&fake_report(1000, 1000, "ncpu0", "bnn"), &pm, &am, 100, 1.0);
        assert!(bnn > cpu);
    }

    #[test]
    fn topo_energy_matches_flat_energy_on_homogeneous_fleets() {
        use crate::topology::Topology;
        let r = fake_report(10_000, 6_000, "ncpu0", "cpu");
        let pm = PowerModel::default();
        let am = AreaModel::default();
        let flat = run_energy_uj(&r, &pm, &am, 100, 0.9);
        let topo = run_energy_uj_topo(&r, &pm, &am, 100, 0.9, &Topology::homogeneous(1));
        assert!((flat - topo).abs() < 1e-12, "flat {flat} vs topo {topo}");
    }

    #[test]
    fn undervolted_cores_cut_the_fleet_energy() {
        use crate::topology::{CoreSpec, SchedulerKind, Topology};
        let mut r = fake_report(10_000, 6_000, "ncpu0", "cpu");
        r.cores.push(r.cores[0].clone());
        r.cores[1].role = "ncpu1".into();
        let pm = PowerModel::default();
        let am = AreaModel::default();
        let nominal = run_energy_uj_topo(&r, &pm, &am, 100, 1.0, &Topology::homogeneous(2));
        let little = CoreSpec { operating_point: Some(0.7), ..CoreSpec::reconfigurable() };
        let topo = Topology::from_specs(
            vec![CoreSpec::reconfigurable(), little],
            vec![crate::fabric::L2_BYTES],
            SchedulerKind::Static,
        )
        .unwrap();
        let mixed = run_energy_uj_topo(&r, &pm, &am, 100, 1.0, &topo);
        assert!(mixed < nominal, "mixed {mixed} vs nominal {nominal}");
    }

    #[test]
    fn equivalent_saving_exceeds_latency_gain() {
        // A 40% latency win converts into a larger energy win because
        // voltage drops quadratically into the dynamic power.
        let pm = PowerModel::default();
        let am = AreaModel::default();
        let fast = fake_report(6_000, 6_000, "ncpu0", "cpu");
        let slow = fake_report(10_000, 10_000, "cpu", "cpu");
        let saving = equivalent_energy_saving(&fast, &slow, &pm, &am, 100, 1.0);
        assert!(saving > 0.4, "saving {saving}");
        assert!(saving < 1.0);
    }

    #[test]
    #[should_panic(expected = "headroom")]
    fn equivalent_saving_requires_speedup() {
        let pm = PowerModel::default();
        let am = AreaModel::default();
        let a = fake_report(10_000, 1_000, "cpu", "cpu");
        let b = fake_report(6_000, 1_000, "cpu", "cpu");
        equivalent_energy_saving(&a, &b, &pm, &am, 100, 1.0);
    }
}
