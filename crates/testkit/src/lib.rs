//! Hermetic test substrate for the NCPU workspace.
//!
//! The tier-1 verify of this repository must run **offline**: no crates.io
//! registry access, no vendored third-party code. This crate replaces the
//! three external crates the workspace previously depended on with
//! dependency-free equivalents that cover exactly the API surface the
//! workspace uses:
//!
//! * [`rng`] replaces `rand` — a SplitMix64-seeded xoshiro256\*\* PRNG with
//!   `seed_from_u64`, `gen`, `gen_range`, `gen_bool`, `shuffle` and a
//!   Box–Muller `normal` sampler. Every stream is a pure function of its
//!   seed, so experiment outputs stay bit-reproducible.
//! * [`prop`] replaces `proptest` — a shrinking property-test harness:
//!   cases are generated from per-case seeds, failures are greedily shrunk
//!   via the [`prop::Shrink`] trait, the failing seed is reported (and can
//!   be persisted to a regression-seed corpus file that is replayed before
//!   novel cases, like proptest's `.proptest-regressions`).
//! * [`bench`] replaces `criterion` — warmup, median-of-N wall-clock
//!   sampling, throughput accounting, and machine-readable JSON reports
//!   written to `BENCH_<suite>.json`.
//!
//! Nothing in this crate depends on any other workspace crate, so every
//! crate (including `ncpu-isa` at the bottom of the graph) can use it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod prop;
pub mod rng;
