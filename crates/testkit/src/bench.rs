//! A lightweight wall-clock benchmark harness.
//!
//! Replaces the `criterion` dependency for the workspace's
//! `harness = false` bench targets. Each benchmark function is warmed up,
//! then timed over `samples` batches of auto-sized iterations; the
//! **median** batch time is reported (robust against scheduler noise).
//! A machine-readable report is written to `BENCH_<suite>.json` in the
//! working directory so perf PRs can diff runs.
//!
//! Environment knobs:
//!
//! * `NCPU_BENCH_SAMPLES` — batches per benchmark (default 11).
//! * `NCPU_BENCH_SAMPLE_MS` — target wall time per batch (default 20 ms).
//!
//! # Examples
//!
//! ```no_run
//! use ncpu_testkit::bench::Bench;
//!
//! let mut b = Bench::new("demo");
//! b.bench("sum_1k", || (0..1000u64).sum::<u64>());
//! b.throughput(1000);
//! b.bench("sum_1k_throughput", || (0..1000u64).sum::<u64>());
//! b.finish(); // prints a table and writes BENCH_demo.json
//! ```

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Result of one benchmark: batch statistics in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name (unique within the suite).
    pub name: String,
    /// Median nanoseconds per iteration over all samples.
    pub median_ns: f64,
    /// Fastest sample's nanoseconds per iteration.
    pub min_ns: f64,
    /// Slowest sample's nanoseconds per iteration.
    pub max_ns: f64,
    /// Batches timed.
    pub samples: usize,
    /// Iterations per batch.
    pub iters_per_sample: u64,
    /// Declared elements processed per iteration (0 = undeclared).
    pub elements: u64,
}

impl BenchResult {
    /// Elements per second at the median, if a throughput was declared.
    pub fn elems_per_sec(&self) -> Option<f64> {
        (self.elements > 0).then(|| self.elements as f64 * 1e9 / self.median_ns)
    }
}

/// A benchmark suite: times closures and renders/writes a report.
#[derive(Debug)]
pub struct Bench {
    suite: String,
    samples: usize,
    sample_target: Duration,
    next_elements: u64,
    results: Vec<BenchResult>,
}

impl Bench {
    /// Creates a suite named `suite` (the JSON lands in
    /// `BENCH_<suite>.json`).
    pub fn new(suite: &str) -> Bench {
        let samples = std::env::var("NCPU_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n: &usize| n >= 3)
            .unwrap_or(11);
        let ms = std::env::var("NCPU_BENCH_SAMPLE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20u64);
        Bench {
            suite: suite.to_string(),
            samples,
            sample_target: Duration::from_millis(ms),
            next_elements: 0,
            results: Vec::new(),
        }
    }

    /// Declares the elements processed per iteration of the *next*
    /// [`Bench::bench`] call, for elements/second reporting.
    pub fn throughput(&mut self, elements: u64) {
        self.next_elements = elements;
    }

    /// Times `f`, consuming any pending [`Bench::throughput`] declaration.
    ///
    /// The return value of `f` is passed through [`black_box`] so the
    /// computation cannot be optimized away.
    pub fn bench<R, F: FnMut() -> R>(&mut self, name: &str, mut f: F) {
        let elements = std::mem::take(&mut self.next_elements);

        // Warmup: run until ~a quarter of one sample target, at least 3x.
        let warmup_budget = self.sample_target / 4;
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_iters < 3 || warmup_start.elapsed() < warmup_budget {
            black_box(f());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64;
        let iters_per_sample =
            ((self.sample_target.as_nanos() as f64 / per_iter.max(1.0)).ceil() as u64).max(1);

        let mut per_iter_ns: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters_per_sample {
                    black_box(f());
                }
                start.elapsed().as_nanos() as f64 / iters_per_sample as f64
            })
            .collect();
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));

        let result = BenchResult {
            name: name.to_string(),
            median_ns: per_iter_ns[per_iter_ns.len() / 2],
            min_ns: per_iter_ns[0],
            max_ns: per_iter_ns[per_iter_ns.len() - 1],
            samples: self.samples,
            iters_per_sample,
            elements,
        };
        println!("{}", render_line(&self.suite, &result));
        self.results.push(result);
    }

    /// Records an externally timed result (for one-shot regenerations
    /// where an iteration loop makes no sense).
    pub fn record_once(&mut self, name: &str, elapsed: Duration) {
        let ns = elapsed.as_nanos() as f64;
        let result = BenchResult {
            name: name.to_string(),
            median_ns: ns,
            min_ns: ns,
            max_ns: ns,
            samples: 1,
            iters_per_sample: 1,
            elements: 0,
        };
        println!("{}", render_line(&self.suite, &result));
        self.results.push(result);
    }

    /// The results recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Serializes the suite report as JSON (no external serializer; the
    /// schema is flat numbers and strings).
    ///
    /// The header records the host shape the numbers were measured on —
    /// available hardware parallelism plus the `NCPU_THREADS` worker
    /// count in effect — so a regression gate (`bench_diff`) can refuse
    /// to compare reports from different machines: a committed 1-core
    /// baseline says nothing about a 16-core run.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"suite\": {},\n", json_string(&self.suite)));
        out.push_str(&format!("  \"host_parallelism\": {},\n", host_parallelism()));
        out.push_str(&format!("  \"ncpu_threads\": {},\n", ncpu_threads()));
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \
                 \"samples\": {}, \"iters_per_sample\": {}, \"elements\": {}, \"elems_per_sec\": {}}}{}\n",
                json_string(&r.name),
                r.median_ns,
                r.min_ns,
                r.max_ns,
                r.samples,
                r.iters_per_sample,
                r.elements,
                r.elems_per_sec().map_or("null".to_string(), |e| format!("{e:.1}")),
                if i + 1 < self.results.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes `BENCH_<suite>.json` into the working directory and returns
    /// its path.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written (a benchmark run whose report
    /// vanishes silently is worse than a crash).
    pub fn finish(self) -> std::path::PathBuf {
        let path = std::path::PathBuf::from(format!("BENCH_{}.json", self.suite));
        std::fs::write(&path, self.to_json())
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("[bench report: {}]", path.display());
        path
    }
}

/// Hardware threads the host offers (1 if the OS will not say).
fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Worker count the `NCPU_THREADS` convention resolves to: the
/// variable's value when set and nonzero, otherwise the host
/// parallelism (mirroring `ncpu-par`, without depending on it).
fn ncpu_threads() -> usize {
    match std::env::var("NCPU_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n > 0 => n,
        _ => host_parallelism(),
    }
}

fn render_line(suite: &str, r: &BenchResult) -> String {
    let mut line = format!(
        "{suite}/{:<32} median {:>12}  (min {}, max {}, {}x{} iters)",
        r.name,
        fmt_ns(r.median_ns),
        fmt_ns(r.min_ns),
        fmt_ns(r.max_ns),
        r.samples,
        r.iters_per_sample,
    );
    if let Some(eps) = r.elems_per_sec() {
        line.push_str(&format!("  {:.2} Melem/s", eps / 1e6));
    }
    line
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_between_min_and_max() {
        std::env::set_var("NCPU_BENCH_SAMPLE_MS", "1");
        let mut b = Bench::new("unit");
        b.throughput(64);
        b.bench("spin", || (0..64u64).map(black_box).sum::<u64>());
        let r = &b.results()[0];
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert!(r.elems_per_sec().expect("throughput declared") > 0.0);
        assert_eq!(r.elements, 64);
    }

    #[test]
    fn json_schema_is_stable() {
        let mut b = Bench::new("unit-json");
        b.record_once("one_shot", Duration::from_millis(5));
        let json = b.to_json();
        assert!(json.contains("\"suite\": \"unit-json\""), "{json}");
        assert!(json.contains("\"name\": \"one_shot\""), "{json}");
        assert!(json.contains("\"median_ns\": 5000000.0"), "{json}");
        assert!(json.contains("\"elems_per_sec\": null"), "{json}");
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn throughput_applies_to_next_bench_only() {
        std::env::set_var("NCPU_BENCH_SAMPLE_MS", "1");
        let mut b = Bench::new("unit-tp");
        b.throughput(10);
        b.bench("with", || black_box(1));
        b.bench("without", || black_box(1));
        assert_eq!(b.results()[0].elements, 10);
        assert_eq!(b.results()[1].elements, 0);
    }
}
