//! Seeded pseudo-random numbers: the workspace's only randomness source.
//!
//! [`Rng`] is xoshiro256\*\* (Blackman & Vigna) with its 256-bit state
//! expanded from a single `u64` seed by SplitMix64 — the construction the
//! reference implementation recommends. The API mirrors the subset of the
//! `rand` crate the workspace used (`seed_from_u64`, `gen`, `gen_range`,
//! `gen_bool`, `shuffle`) plus a standard-normal sampler, so swapping a
//! call-site is a one-line import change.
//!
//! Determinism contract: for a fixed seed, the value stream is identical
//! across platforms, build profiles, and releases of this crate. Golden
//! values in the experiment suite depend on it.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step: expands a seed into well-distributed state words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded xoshiro256\*\* pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use ncpu_testkit::rng::Rng;
///
/// let mut rng = Rng::seed_from_u64(7);
/// let die = rng.gen_range(1..=6);
/// assert!((1..=6).contains(&die));
/// let p: f64 = rng.gen();
/// assert!((0.0..1.0).contains(&p));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        Rng { s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)] }
    }

    /// Creates the `index`-th derived generator of a seed family.
    ///
    /// Parallel maps give each item its own stream with
    /// `Rng::split(seed, index)` so no generator is shared across items
    /// and the stream each item sees is independent of worker count or
    /// scheduling. The derivation mixes `index` through SplitMix64 before
    /// expanding state, so sibling streams are as decorrelated as
    /// different top-level seeds, and `split(seed, i)` never equals
    /// `seed_from_u64(seed)` advanced by any offset.
    ///
    /// Determinism contract: like [`Rng::seed_from_u64`], the derived
    /// stream is a pure function of `(seed, index)`, pinned across
    /// platforms and releases.
    pub fn split(seed: u64, index: u64) -> Rng {
        // Two SplitMix64 passes keyed off disjoint golden-ratio offsets:
        // the first whitens the seed, the second folds in the index.
        let mut sm = seed;
        let a = splitmix64(&mut sm);
        let mut sm = a ^ index.wrapping_mul(0xD1B5_4A32_D192_ED03);
        Rng { s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)] }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Samples a value of a [`Sample`] type (uniform over its natural
    /// domain; floats are uniform in `[0, 1)`).
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.gen::<f64>() < p
    }

    /// Fisher–Yates shuffle of `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// One standard-normal sample (Box–Muller; two uniforms per call).
    pub fn normal(&mut self) -> f64 {
        let u1: f64 = self.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Uniform `u64` below `bound` via 128-bit multiply-shift.
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Types [`Rng::gen`] can produce directly.
pub trait Sample {
    /// Draws one value from `rng`.
    fn sample(rng: &mut Rng) -> Self;
}

impl Sample for u64 {
    fn sample(rng: &mut Rng) -> u64 {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample(rng: &mut Rng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for u16 {
    fn sample(rng: &mut Rng) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}

impl Sample for u8 {
    fn sample(rng: &mut Rng) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Sample for usize {
    fn sample(rng: &mut Rng) -> usize {
        rng.next_u64() as usize
    }
}

impl Sample for i64 {
    fn sample(rng: &mut Rng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Sample for i32 {
    fn sample(rng: &mut Rng) -> i32 {
        u32::sample(rng) as i32
    }
}

impl Sample for i16 {
    fn sample(rng: &mut Rng) -> i16 {
        u16::sample(rng) as i16
    }
}

impl Sample for bool {
    fn sample(rng: &mut Rng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample(rng: &mut Rng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample(rng: &mut Rng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    fn sample_from(self, rng: &mut Rng) -> T;
}

macro_rules! int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(rng.bounded(span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add(rng.bounded(span + 1) as $wide) as $t
            }
        }
    )*};
}

int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let u: $t = rng.gen();
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let u: $t = rng.gen();
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn stream_is_pinned_across_releases() {
        // The determinism contract: these exact values must never change,
        // or every golden experiment value in the workspace shifts.
        let mut rng = Rng::seed_from_u64(0);
        assert_eq!(rng.next_u64(), 0x99EC_5F36_CB75_F2B4);
        assert_eq!(rng.next_u64(), 0xBF6E_1F78_4956_452A);
        assert_eq!(rng.next_u64(), 0x1A5F_849D_4933_E6E0);
    }

    #[test]
    fn split_streams_are_pinned_and_distinct() {
        // Pinned like `stream_is_pinned_across_releases`: parallel call
        // sites derive per-item streams from these values, so changing
        // them shifts every parallelized golden output.
        let mut s0 = Rng::split(0, 0);
        let mut s1 = Rng::split(0, 1);
        assert_eq!(s0.next_u64(), 0xFB54_05F7_BD79_C540);
        assert_eq!(s1.next_u64(), 0xA399_EBA7_5103_8754);
        // Distinct from each other and from the base stream.
        let head = |mut r: Rng| (0..8).map(|_| r.next_u64()).collect::<Vec<_>>();
        let base = head(Rng::seed_from_u64(0));
        assert_ne!(head(Rng::split(0, 0)), head(Rng::split(0, 1)));
        assert_ne!(head(Rng::split(0, 0)), base);
        assert_ne!(head(Rng::split(0, 1)), base);
        // Pure in (seed, index).
        assert_eq!(head(Rng::split(7, 3)), head(Rng::split(7, 3)));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..2000 {
            assert!((0..7).contains(&rng.gen_range(0..7)));
            assert!((-5i32..=5).contains(&rng.gen_range(-5i32..=5)));
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
            let u = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&u));
        }
    }

    #[test]
    fn range_covers_extremes() {
        let mut rng = Rng::seed_from_u64(4);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        // Inclusive upper bound is reachable.
        let mut top = false;
        for _ in 0..200 {
            top |= rng.gen_range(0..=3u32) == 3;
        }
        assert!(top);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        Rng::seed_from_u64(0).gen_range(5..5u32);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn unit_floats_are_half_open() {
        let mut rng = Rng::seed_from_u64(6);
        for _ in 0..5000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(7);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // And it actually moves things (overwhelmingly likely).
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn normal_has_sane_moments() {
        let mut rng = Rng::seed_from_u64(8);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
