//! A minimal shrinking property-test harness.
//!
//! Replaces the `proptest` dependency with the three mechanisms the
//! workspace actually relies on:
//!
//! 1. **Seeded case generation.** Each case is generated from its own
//!    deterministic seed (derived from the base seed and the case index),
//!    so any failure is reproducible from the single `u64` printed in the
//!    panic message.
//! 2. **Greedy shrinking.** On failure the input is reduced via
//!    [`Shrink`]: the first shrink candidate that still fails becomes the
//!    new counterexample, until none fails. Integers shrink toward zero,
//!    vectors drop chunks and elements, tuples shrink one field at a time.
//! 3. **A regression-seed corpus.** [`Prop::corpus`] names a text file of
//!    seeds (one per line, `#` comments) that is replayed *before* novel
//!    cases — the replacement for proptest's `.proptest-regressions`
//!    files. A fresh failure is appended to the corpus automatically so
//!    the counterexample is pinned for every future run.
//!
//! Case count defaults to 256 and can be raised or lowered with the
//! `NCPU_PROP_CASES` environment variable; `NCPU_PROP_SEED` re-bases the
//! whole run for exploratory fuzzing.
//!
//! # Examples
//!
//! ```
//! use ncpu_testkit::prop::Prop;
//! use ncpu_testkit::prop_assert_eq;
//!
//! Prop::new("addition_commutes").run(
//!     |rng| (rng.gen::<u32>() >> 1, rng.gen::<u32>() >> 1),
//!     |&(a, b)| {
//!         prop_assert_eq!(a + b, b + a);
//!         Ok(())
//!     },
//! );
//! ```

use std::fmt::Debug;
use std::io::Write as _;
use std::path::PathBuf;

use crate::rng::Rng;

/// Default number of generated cases per property.
pub const DEFAULT_CASES: u32 = 256;

/// A configured property runner.
#[derive(Debug, Clone)]
pub struct Prop {
    name: String,
    cases: u32,
    base_seed: u64,
    max_shrink_iters: u32,
    pinned: Vec<u64>,
    corpus: Option<PathBuf>,
}

/// FNV-1a, used to give each property its own default seed stream.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl Prop {
    /// Creates a runner for the property called `name`.
    ///
    /// The case count comes from `NCPU_PROP_CASES` (default
    /// [`DEFAULT_CASES`]); the base seed from `NCPU_PROP_SEED` (default: a
    /// hash of `name`, so distinct properties explore distinct streams).
    pub fn new(name: &str) -> Prop {
        let cases = std::env::var("NCPU_PROP_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_CASES);
        let base_seed = std::env::var("NCPU_PROP_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| fnv1a(name.as_bytes()));
        Prop {
            name: name.to_string(),
            cases,
            base_seed,
            max_shrink_iters: 2000,
            pinned: Vec::new(),
            corpus: None,
        }
    }

    /// Overrides the number of generated cases (env var still wins).
    pub fn cases(mut self, cases: u32) -> Prop {
        if std::env::var("NCPU_PROP_CASES").is_err() {
            self.cases = cases;
        }
        self
    }

    /// Seeds replayed before any novel case — inline regression pins.
    pub fn pin(mut self, seeds: &[u64]) -> Prop {
        self.pinned.extend_from_slice(seeds);
        self
    }

    /// Attaches a regression-seed corpus file: its seeds are replayed
    /// first, and any fresh failing seed is appended to it.
    pub fn corpus(mut self, path: impl Into<PathBuf>) -> Prop {
        self.corpus = Some(path.into());
        self
    }

    /// Seed of generated case `index` (pure function of the base seed).
    fn case_seed(&self, index: u32) -> u64 {
        // SplitMix-style mix so consecutive cases are uncorrelated.
        let mut z = self.base_seed.wrapping_add((u64::from(index) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^ (z >> 31)
    }

    fn corpus_seeds(&self) -> Vec<u64> {
        let Some(path) = &self.corpus else { return Vec::new() };
        let Ok(text) = std::fs::read_to_string(path) else { return Vec::new() };
        text.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .filter_map(|l| l.parse().ok())
            .collect()
    }

    fn persist_failure(&self, seed: u64) {
        let Some(path) = &self.corpus else { return };
        let known = self.corpus_seeds();
        if known.contains(&seed) {
            return;
        }
        let new_file = !path.exists();
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            if new_file {
                let _ = writeln!(
                    f,
                    "# Regression-seed corpus for `{}` (ncpu-testkit::prop).\n\
                     # Seeds below reproduced failures; they are replayed before novel\n\
                     # cases. Check this file in so everyone replays them.",
                    self.name
                );
            }
            let _ = writeln!(f, "{seed}");
        }
    }

    /// Runs the property: `gen` builds an input from a seeded RNG and
    /// `prop` checks it, returning `Err(reason)` on violation.
    ///
    /// # Panics
    ///
    /// Panics on the first (shrunk) counterexample, reporting the failing
    /// seed, the original and the minimized input.
    pub fn run<T, G, P>(&self, gen: G, prop: P)
    where
        T: Clone + Debug + Shrink,
        G: Fn(&mut Rng) -> T,
        P: Fn(&T) -> Result<(), String>,
    {
        let corpus_seeds = self.corpus_seeds();
        let replay = self.pinned.iter().chain(&corpus_seeds).copied();
        for seed in replay {
            self.run_one(seed, true, &gen, &prop);
        }
        for case in 0..self.cases {
            self.run_one(self.case_seed(case), false, &gen, &prop);
        }
    }

    fn run_one<T, G, P>(&self, seed: u64, replayed: bool, gen: &G, prop: &P)
    where
        T: Clone + Debug + Shrink,
        G: Fn(&mut Rng) -> T,
        P: Fn(&T) -> Result<(), String>,
    {
        let input = gen(&mut Rng::seed_from_u64(seed));
        let Err(reason) = prop(&input) else { return };
        if !replayed {
            self.persist_failure(seed);
        }
        let (shrunk, shrunk_reason, steps) = self.shrink(input.clone(), reason.clone(), prop);
        panic!(
            "property `{}` failed (seed {seed}{}).\n\
             original input: {input:?}\n\
             original error: {reason}\n\
             shrunk input ({steps} steps): {shrunk:?}\n\
             shrunk error: {shrunk_reason}\n\
             reproduce with: Prop::new(\"{}\").pin(&[{seed}])",
            self.name,
            if replayed { ", replayed from corpus/pin" } else { "" },
            self.name,
        );
    }

    /// Greedy shrink: repeatedly adopt the first failing candidate.
    fn shrink<T, P>(&self, mut current: T, mut reason: String, prop: &P) -> (T, String, u32)
    where
        T: Clone + Debug + Shrink,
        P: Fn(&T) -> Result<(), String>,
    {
        let mut steps = 0;
        let mut budget = self.max_shrink_iters;
        'outer: while budget > 0 {
            for candidate in current.shrink() {
                budget = budget.saturating_sub(1);
                if let Err(e) = prop(&candidate) {
                    current = candidate;
                    reason = e;
                    steps += 1;
                    continue 'outer;
                }
                if budget == 0 {
                    break;
                }
            }
            break;
        }
        (current, reason, steps)
    }
}

/// Produces smaller variants of a failing input, simplest first.
///
/// An empty vector means the value is fully minimized.
pub trait Shrink: Sized {
    /// Candidate reductions of `self` (each "smaller" in some ordering
    /// that terminates).
    fn shrink(&self) -> Vec<Self>;
}

/// Opts a generated value out of shrinking.
///
/// For inputs with no meaningful reduction order (a decoded instruction, a
/// trained model), the failing *seed* in the panic message is the
/// counterexample; wrap the value so the harness skips shrinking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NoShrink<T>(pub T);

impl<T: Clone + Debug> Shrink for NoShrink<T> {
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! shrink_uint {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<$t> {
                let v = *self;
                let mut out = Vec::new();
                if v != 0 {
                    out.push(0);
                    if v / 2 != 0 {
                        out.push(v / 2);
                    }
                    out.push(v - 1);
                }
                out.dedup();
                out
            }
        }
    )*};
}
shrink_uint!(u8, u16, u32, u64, usize);

macro_rules! shrink_int {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<$t> {
                let v = *self;
                let mut out = Vec::new();
                if v != 0 {
                    out.push(0);
                    if v / 2 != 0 {
                        out.push(v / 2);
                    }
                    if v < 0 {
                        out.push(-v); // prefer positive counterexamples
                        out.push(v + 1);
                    } else {
                        out.push(v - 1);
                    }
                }
                out.dedup();
                out
            }
        }
    )*};
}
shrink_int!(i8, i16, i32, i64, isize);

impl Shrink for bool {
    fn shrink(&self) -> Vec<bool> {
        if *self { vec![false] } else { Vec::new() }
    }
}

impl Shrink for f64 {
    fn shrink(&self) -> Vec<f64> {
        if *self == 0.0 || !self.is_finite() {
            Vec::new()
        } else {
            vec![0.0, self / 2.0]
        }
    }
}

impl Shrink for f32 {
    fn shrink(&self) -> Vec<f32> {
        if *self == 0.0 || !self.is_finite() {
            Vec::new()
        } else {
            vec![0.0, self / 2.0]
        }
    }
}

impl Shrink for char {
    fn shrink(&self) -> Vec<char> {
        if *self == 'a' { Vec::new() } else { vec!['a'] }
    }
}

impl<T: Shrink + Clone> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Vec<T>> {
        let n = self.len();
        let mut out = Vec::new();
        if n == 0 {
            return out;
        }
        // Drop big chunks first (empty, halves), then single elements,
        // then shrink elements in place.
        out.push(Vec::new());
        if n > 1 {
            out.push(self[n / 2..].to_vec());
            out.push(self[..n / 2].to_vec());
        }
        let single_cap = 32.min(n);
        for i in 0..single_cap {
            let mut v = self.clone();
            v.remove(i);
            out.push(v);
        }
        for i in 0..single_cap {
            for smaller in self[i].shrink() {
                let mut v = self.clone();
                v[i] = smaller;
                out.push(v);
            }
        }
        out
    }
}

impl<T: Shrink + Clone> Shrink for Option<T> {
    fn shrink(&self) -> Vec<Option<T>> {
        match self {
            None => Vec::new(),
            Some(v) => {
                let mut out = vec![None];
                out.extend(v.shrink().into_iter().map(Some));
                out
            }
        }
    }
}

macro_rules! shrink_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Shrink + Clone),+> Shrink for ($($name,)+) {
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for smaller in self.$idx.shrink() {
                        let mut t = self.clone();
                        t.$idx = smaller;
                        out.push(t);
                    }
                )+
                out
            }
        }
    };
}
shrink_tuple!(A: 0);
shrink_tuple!(A: 0, B: 1);
shrink_tuple!(A: 0, B: 1, C: 2);
shrink_tuple!(A: 0, B: 1, C: 2, D: 3);
shrink_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
shrink_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Asserts a condition inside a property, returning `Err` instead of
/// panicking so the harness can shrink the input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n  note: {}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)+)));
        }
    }};
}

/// Asserts inequality inside a property (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!("assertion failed: {} != {}\n  both: {:?}",
                stringify!($left), stringify!($right), l));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!("assertion failed: {} != {}\n  both: {:?}\n  note: {}",
                stringify!($left), stringify!($right), l, format!($($fmt)+)));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        let counter = std::cell::Cell::new(0u32);
        Prop::new("always_true").cases(100).run(
            |rng| rng.gen::<u32>(),
            |_| {
                counter.set(counter.get() + 1);
                Ok(())
            },
        );
        count += counter.get();
        assert_eq!(count, 100);
    }

    #[test]
    fn failing_property_panics_with_seed_and_shrunk_input() {
        let result = std::panic::catch_unwind(|| {
            Prop::new("fails_over_100").cases(200).run(
                |rng| rng.gen_range(0u32..1000),
                |&v| if v <= 100 { Ok(()) } else { Err(format!("{v} > 100")) },
            );
        });
        let msg = *result.expect_err("must fail").downcast::<String>().expect("panic message");
        assert!(msg.contains("seed "), "{msg}");
        // Greedy shrink lands on the boundary counterexample.
        assert!(msg.contains("shrunk input"), "{msg}");
        let shrunk: u32 = msg
            .lines()
            .find(|l| l.starts_with("shrunk input"))
            .and_then(|l| l.rsplit(": ").next())
            .and_then(|v| v.trim().parse().ok())
            .expect("shrunk value parses");
        assert_eq!(shrunk, 101, "minimal failing value");
    }

    #[test]
    fn vec_shrinking_minimizes_length() {
        let result = std::panic::catch_unwind(|| {
            Prop::new("no_big_vecs").cases(100).run(
                |rng| {
                    let n = rng.gen_range(0..20usize);
                    (0..n).map(|_| rng.gen_range(0i32..10)).collect::<Vec<i32>>()
                },
                |v| if v.len() < 3 { Ok(()) } else { Err("too long".into()) },
            );
        });
        let msg = *result.expect_err("must fail").downcast::<String>().expect("panic message");
        let line = msg.lines().find(|l| l.starts_with("shrunk input")).expect("shrunk line");
        // Minimal counterexample is a 3-element vector of zeros.
        assert!(line.contains("[0, 0, 0]"), "{line}");
    }

    #[test]
    fn pinned_seeds_replay_first() {
        let seen = std::cell::RefCell::new(Vec::new());
        Prop::new("records_seeds").cases(2).pin(&[7, 9]).run(
            |rng| rng.next_u64(),
            |&v| {
                seen.borrow_mut().push(v);
                Ok(())
            },
        );
        let seen = seen.into_inner();
        assert_eq!(seen.len(), 4);
        assert_eq!(seen[0], Rng::seed_from_u64(7).next_u64());
        assert_eq!(seen[1], Rng::seed_from_u64(9).next_u64());
    }

    #[test]
    fn corpus_file_round_trips() {
        let dir = std::env::temp_dir().join("ncpu-testkit-corpus-test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join(format!("corpus-{}.seeds", std::process::id()));
        let _ = std::fs::remove_file(&path);

        // First run fails and persists the seed.
        let result = std::panic::catch_unwind(|| {
            Prop::new("corpus_demo").cases(5).corpus(&path).run(
                |rng| rng.gen_range(0u32..100),
                |_| Err("always fails".into()),
            );
        });
        assert!(result.is_err());
        let text = std::fs::read_to_string(&path).expect("corpus written");
        let seeds: Vec<u64> = text
            .lines()
            .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
            .map(|l| l.trim().parse().expect("seed"))
            .collect();
        assert_eq!(seeds.len(), 1, "one persisted failure:\n{text}");

        // A replay reports the corpus provenance.
        let result = std::panic::catch_unwind(|| {
            Prop::new("corpus_demo").cases(0).corpus(&path).run(
                |rng| rng.gen_range(0u32..100),
                |_| Err("always fails".into()),
            );
        });
        let msg = *result.expect_err("replay fails").downcast::<String>().expect("msg");
        assert!(msg.contains("replayed from corpus"), "{msg}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tuple_and_int_shrinkers_terminate() {
        let mut v = (250u8, -40i32, true);
        let mut guard = 0;
        loop {
            let cands = v.shrink();
            match cands.into_iter().next() {
                Some(c) => v = c,
                None => break,
            }
            guard += 1;
            assert!(guard < 1000, "shrink must terminate");
        }
        assert_eq!(v, (0, 0, false));
    }
}
