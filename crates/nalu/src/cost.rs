//! Gate-level hardware-cost comparison (Fig. 19(b)).
//!
//! The NALU implementation cost is dominated by one 8-bit multiplier plus
//! weight storage per synapse; a digital ALU operator is a handful of
//! gates plus its operand/result registers. Constants are NAND2-equivalent
//! gate counts at ~2 µm²/gate in 65nm (consistent with
//! [`ncpu_power::AreaModel::digital_alu_op_mm2`]).

use crate::tasks::AluTask;

/// NAND2-equivalent gate area in mm² (65nm, routed).
pub const GATE_MM2: f64 = 2.0e-6;

/// Gates per NALU synapse: an 8-bit fixed-point multiplier (~24 gates/bit
/// in a compact array) plus two stored weight registers (Ŵ, M̂).
pub const GATES_PER_SYNAPSE: u32 = 22;

/// Fixed NALU overhead: accumulators, activation lookup, control.
pub const NALU_FIXED_GATES: u32 = 200;

/// Register/interface overhead every digital operator carries.
pub const DIGITAL_REG_GATES: u32 = 13;

/// Combinational gate count of the digital operator itself.
pub fn digital_logic_gates(task: AluTask) -> u32 {
    match task {
        AluTask::Add => 30,            // 8-bit ripple-carry adder
        AluTask::Sub => 36,            // adder + operand inversion
        AluTask::And | AluTask::Or => 8,
        AluTask::Xor => 12,
        AluTask::AddSubCombined => 44, // adder + inversion + select
    }
}

/// Total digital implementation area in mm².
pub fn digital_area_mm2(task: AluTask) -> f64 {
    (DIGITAL_REG_GATES + digital_logic_gates(task)) as f64 * GATE_MM2
}

/// NALU implementation area in mm² for a network with `macs` synapses.
pub fn nalu_area_mm2(macs: usize) -> f64 {
    (NALU_FIXED_GATES as f64 + macs as f64 * GATES_PER_SYNAPSE as f64) * GATE_MM2
}

/// Fig. 19(b)'s headline: NALU area over digital area for one task.
pub fn area_ratio(task: AluTask, macs: usize) -> f64 {
    nalu_area_mm2(macs) / digital_area_mm2(task)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 2→8→1 network of the experiment has 24 synapses.
    const MACS: usize = 24;

    #[test]
    fn ratios_land_in_the_paper_band() {
        // Paper Fig. 19(b): roughly 13×–35× across the operations.
        for task in [AluTask::Add, AluTask::Sub, AluTask::And, AluTask::Xor, AluTask::Or] {
            let r = area_ratio(task, MACS);
            assert!((10.0..40.0).contains(&r), "{}: ratio {r:.1}", task.name());
        }
    }

    #[test]
    fn add_is_about_17x() {
        let r = area_ratio(AluTask::Add, MACS);
        assert!((14.0..20.0).contains(&r), "ADD ratio {r:.1} vs paper 17×");
    }

    #[test]
    fn boolean_ratios_exceed_arithmetic_ratios() {
        // Tiny digital gates make the NALU look worst on Boolean ops.
        assert!(area_ratio(AluTask::And, MACS) > area_ratio(AluTask::Add, MACS));
        assert!(area_ratio(AluTask::Xor, MACS) > area_ratio(AluTask::Sub, MACS));
    }

    #[test]
    fn nalu_area_scales_with_synapses() {
        assert!(nalu_area_mm2(48) > nalu_area_mm2(24));
    }
}
