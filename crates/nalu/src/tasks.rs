//! The 8-bit ALU learning tasks and normalized-error evaluation.

use ncpu_testkit::rng::Rng;

use crate::network::NacNetwork;

/// Which ALU function the network is asked to learn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluTask {
    /// 8-bit addition.
    Add,
    /// 8-bit subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise XOR.
    Xor,
    /// Bitwise OR.
    Or,
    /// Add *and* sub simultaneously, selected by a third input — the case
    /// the paper reports as "almost random".
    AddSubCombined,
}

impl AluTask {
    /// All tasks in the order Fig. 19(a) reports them.
    pub const ALL: [AluTask; 6] =
        [AluTask::Add, AluTask::Sub, AluTask::And, AluTask::Xor, AluTask::Or, AluTask::AddSubCombined];

    /// Stable display name.
    pub const fn name(self) -> &'static str {
        match self {
            AluTask::Add => "add",
            AluTask::Sub => "sub",
            AluTask::And => "and",
            AluTask::Xor => "xor",
            AluTask::Or => "or",
            AluTask::AddSubCombined => "add+sub",
        }
    }

    /// Number of network inputs the task needs.
    pub const fn inputs(self) -> usize {
        match self {
            AluTask::AddSubCombined => 3,
            _ => 2,
        }
    }

    /// Ground truth on 8-bit operands, scaled to the unit interval
    /// (subtraction may go negative — the NAC is signed).
    fn target(self, a: u32, b: u32, sel: bool) -> f64 {
        let raw = match self {
            AluTask::Add => (a + b) as f64,
            AluTask::Sub => a as f64 - b as f64,
            AluTask::And => (a & b) as f64,
            AluTask::Xor => (a ^ b) as f64,
            AluTask::Or => (a | b) as f64,
            AluTask::AddSubCombined => {
                if sel {
                    (a + b) as f64
                } else {
                    a as f64 - b as f64
                }
            }
        };
        raw / 255.0
    }

    /// Generates a labelled dataset of `n` samples.
    pub fn dataset(self, n: usize, seed: u64) -> Vec<(Vec<f64>, f64)> {
        let mut rng = Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let a = rng.gen_range(0u32..256);
                let b = rng.gen_range(0u32..256);
                let sel = rng.gen_bool(0.5);
                let mut x = vec![a as f64 / 255.0, b as f64 / 255.0];
                if self.inputs() == 3 {
                    x.push(sel as u32 as f64);
                }
                (x, self.target(a, b, sel))
            })
            .collect()
    }
}

/// Outcome of training one task.
#[derive(Debug, Clone)]
pub struct TaskResult {
    /// The task.
    pub task: AluTask,
    /// Test MSE of the trained network.
    pub trained_mse: f64,
    /// Test MSE of the random-initialized network (the 100% reference).
    pub random_mse: f64,
    /// The trained network's MAC count (for the cost model).
    pub macs: usize,
}

impl TaskResult {
    /// Fig. 19(a)'s metric: error relative to a random-initialized model,
    /// in percent (0 = perfect, 100 = no better than random).
    pub fn normalized_error_pct(&self) -> f64 {
        if self.random_mse == 0.0 {
            return 0.0;
        }
        (self.trained_mse / self.random_mse * 100.0).min(100.0)
    }
}

/// Trains a NAC network on `task` and evaluates the normalized error.
///
/// Deterministic in `seed`. `epochs` full-batch Adam steps on 512 training
/// samples; evaluation on 256 held-out samples.
pub fn normalized_error(task: AluTask, epochs: usize, seed: u64) -> TaskResult {
    let train = task.dataset(512, seed);
    let test = task.dataset(256, seed.wrapping_add(1));
    let mut net = NacNetwork::new(task.inputs(), 8, seed);
    let random_mse = net.mse(&test);
    for _ in 0..epochs {
        net.train_epoch(&train, 0.05);
    }
    TaskResult { task, trained_mse: net.mse(&test), random_mse, macs: net.macs() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_sub_are_learnable() {
        for task in [AluTask::Add, AluTask::Sub] {
            let r = normalized_error(task, 600, 5);
            assert!(
                r.normalized_error_pct() < 12.0,
                "{} should be learnable, got {:.1}%",
                task.name(),
                r.normalized_error_pct()
            );
        }
    }

    #[test]
    fn boolean_ops_resist_learning() {
        for task in [AluTask::And, AluTask::Xor] {
            let r = normalized_error(task, 600, 5);
            assert!(
                r.normalized_error_pct() > 14.0,
                "{} should stay erroneous, got {:.1}%",
                task.name(),
                r.normalized_error_pct()
            );
        }
    }

    #[test]
    fn combined_task_is_near_random() {
        let add = normalized_error(AluTask::Add, 600, 5);
        let combined = normalized_error(AluTask::AddSubCombined, 600, 5);
        assert!(
            combined.normalized_error_pct() > 3.0 * add.normalized_error_pct().max(1.0),
            "combined {:.1}% vs add {:.1}%",
            combined.normalized_error_pct(),
            add.normalized_error_pct()
        );
    }

    #[test]
    fn results_are_deterministic() {
        let a = normalized_error(AluTask::Xor, 50, 9);
        let b = normalized_error(AluTask::Xor, 50, 9);
        assert_eq!(a.trained_mse.to_bits(), b.trained_mse.to_bits());
    }

    #[test]
    fn dataset_shapes() {
        assert_eq!(AluTask::Add.dataset(10, 0)[0].0.len(), 2);
        assert_eq!(AluTask::AddSubCombined.dataset(10, 0)[0].0.len(), 3);
    }
}
