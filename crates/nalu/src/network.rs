//! Two-layer NAC network with Adam training.

use ncpu_testkit::rng::Rng;

/// One NAC layer: effective weights `W = tanh(Ŵ) ⊙ σ(M̂)`, output `Wx`.
#[derive(Debug, Clone)]
struct NacLayer {
    inputs: usize,
    outputs: usize,
    w_hat: Vec<f64>,
    m_hat: Vec<f64>,
    // Adam state.
    mw: Vec<f64>,
    vw: Vec<f64>,
    mm: Vec<f64>,
    vm: Vec<f64>,
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl NacLayer {
    fn new(inputs: usize, outputs: usize, rng: &mut Rng) -> NacLayer {
        let n = inputs * outputs;
        NacLayer {
            inputs,
            outputs,
            w_hat: (0..n).map(|_| rng.gen_range(-0.5..0.5)).collect(),
            m_hat: (0..n).map(|_| rng.gen_range(-0.5..0.5)).collect(),
            mw: vec![0.0; n],
            vw: vec![0.0; n],
            mm: vec![0.0; n],
            vm: vec![0.0; n],
        }
    }

    fn weight(&self, o: usize, i: usize) -> f64 {
        let k = o * self.inputs + i;
        self.w_hat[k].tanh() * sigmoid(self.m_hat[k])
    }

    fn forward(&self, x: &[f64]) -> Vec<f64> {
        (0..self.outputs)
            .map(|o| (0..self.inputs).map(|i| self.weight(o, i) * x[i]).sum())
            .collect()
    }

    /// Accumulates gradients for one sample; returns `dL/dx`.
    fn backward(&self, x: &[f64], dy: &[f64], gw: &mut [f64], gm: &mut [f64]) -> Vec<f64> {
        let mut dx = vec![0.0; self.inputs];
        for (o, &dy_o) in dy.iter().enumerate().take(self.outputs) {
            for i in 0..self.inputs {
                let k = o * self.inputs + i;
                let t = self.w_hat[k].tanh();
                let s = sigmoid(self.m_hat[k]);
                let dw_eff = dy_o * x[i];
                gw[k] += dw_eff * s * (1.0 - t * t);
                gm[k] += dw_eff * t * s * (1.0 - s);
                dx[i] += dy_o * t * s;
            }
        }
        dx
    }

    fn adam(&mut self, gw: &[f64], gm: &[f64], lr: f64, t: f64) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        for k in 0..self.w_hat.len() {
            self.mw[k] = B1 * self.mw[k] + (1.0 - B1) * gw[k];
            self.vw[k] = B2 * self.vw[k] + (1.0 - B2) * gw[k] * gw[k];
            let mh = self.mw[k] / (1.0 - B1.powf(t));
            let vh = self.vw[k] / (1.0 - B2.powf(t));
            self.w_hat[k] -= lr * mh / (vh.sqrt() + EPS);

            self.mm[k] = B1 * self.mm[k] + (1.0 - B1) * gm[k];
            self.vm[k] = B2 * self.vm[k] + (1.0 - B2) * gm[k] * gm[k];
            let mh = self.mm[k] / (1.0 - B1.powf(t));
            let vh = self.vm[k] / (1.0 - B2.powf(t));
            self.m_hat[k] -= lr * mh / (vh.sqrt() + EPS);
        }
    }
}

/// A two-layer NAC network (`inputs → hidden → 1`), the architecture the
/// paper evaluates ("a two layers fully-connected neural network … same
/// as \[36\]").
#[derive(Debug, Clone)]
pub struct NacNetwork {
    l1: NacLayer,
    l2: NacLayer,
    step: f64,
}

impl NacNetwork {
    /// Creates a network with `inputs` inputs and `hidden` NAC units,
    /// deterministically initialized from `seed`.
    pub fn new(inputs: usize, hidden: usize, seed: u64) -> NacNetwork {
        let mut rng = Rng::seed_from_u64(seed);
        NacNetwork {
            l1: NacLayer::new(inputs, hidden, &mut rng),
            l2: NacLayer::new(hidden, 1, &mut rng),
            step: 0.0,
        }
    }

    /// Number of scalar inputs.
    pub fn inputs(&self) -> usize {
        self.l1.inputs
    }

    /// Number of hidden units.
    pub fn hidden(&self) -> usize {
        self.l1.outputs
    }

    /// Total trainable parameters (each NAC weight carries Ŵ and M̂).
    pub fn parameters(&self) -> usize {
        2 * (self.l1.w_hat.len() + self.l2.w_hat.len())
    }

    /// Number of effective multiply-accumulates per inference — what the
    /// hardware cost model charges for.
    pub fn macs(&self) -> usize {
        self.l1.w_hat.len() + self.l2.w_hat.len()
    }

    /// Network output for one sample.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.l2.forward(&self.l1.forward(x))[0]
    }

    /// Mean squared error over a dataset.
    pub fn mse(&self, data: &[(Vec<f64>, f64)]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        data.iter()
            .map(|(x, y)| {
                let d = self.predict(x) - y;
                d * d
            })
            .sum::<f64>()
            / data.len() as f64
    }

    /// One full-batch Adam step on MSE; returns the pre-step loss.
    pub fn train_epoch(&mut self, data: &[(Vec<f64>, f64)], lr: f64) -> f64 {
        let mut gw1 = vec![0.0; self.l1.w_hat.len()];
        let mut gm1 = vec![0.0; self.l1.w_hat.len()];
        let mut gw2 = vec![0.0; self.l2.w_hat.len()];
        let mut gm2 = vec![0.0; self.l2.w_hat.len()];
        let inv = 1.0 / data.len() as f64;
        let mut loss = 0.0;
        for (x, y) in data {
            let h = self.l1.forward(x);
            let out = self.l2.forward(&h)[0];
            let err = out - y;
            loss += err * err;
            let dy = [2.0 * err * inv];
            let dh = self.l2.backward(&h, &dy, &mut gw2, &mut gm2);
            self.l1.backward(x, &dh, &mut gw1, &mut gm1);
        }
        self.step += 1.0;
        self.l1.adam(&gw1, &gm1, lr, self.step);
        self.l2.adam(&gw2, &gm2, lr, self.step);
        loss * inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_plain_addition() {
        let mut rng = Rng::seed_from_u64(1);
        let data: Vec<(Vec<f64>, f64)> = (0..256)
            .map(|_| {
                let a: f64 = rng.gen_range(0.0..1.0);
                let b: f64 = rng.gen_range(0.0..1.0);
                (vec![a, b], a + b)
            })
            .collect();
        let mut net = NacNetwork::new(2, 4, 7);
        for _ in 0..800 {
            net.train_epoch(&data, 0.05);
        }
        assert!(net.mse(&data) < 1e-3, "NAC must learn addition, mse={}", net.mse(&data));
    }

    #[test]
    fn deterministic_in_seed() {
        let a = NacNetwork::new(2, 4, 3);
        let b = NacNetwork::new(2, 4, 3);
        assert_eq!(a.predict(&[0.3, 0.7]).to_bits(), b.predict(&[0.3, 0.7]).to_bits());
    }

    #[test]
    fn parameter_accounting() {
        let net = NacNetwork::new(3, 8, 0);
        assert_eq!(net.macs(), 3 * 8 + 8);
        assert_eq!(net.parameters(), 2 * net.macs());
        assert_eq!(net.inputs(), 3);
        assert_eq!(net.hidden(), 8);
    }
}
