//! The Neural-ALU counter-experiment (paper Section VIII-C, Fig. 19).
//!
//! The paper evaluates Google's NALU/NAC proposal — training a neural
//! network to *be* an ALU — from a hardware perspective, and finds it
//! untenable: add/sub are learnable, Boolean ops and the combined add+sub
//! task are not, and the hardware cost is 13–35× a plain digital
//! implementation. This crate reproduces both halves:
//!
//! * [`NacNetwork`] — a two-layer NAC (neural accumulator) network with
//!   the `W = tanh(Ŵ) ⊙ σ(M̂)` parameterization, trained by Adam on MSE,
//! * [`tasks`] — the 8-bit ALU learning tasks (`add`, `sub`, `and`,
//!   `xor`, `or`, and the combined add/sub task) with normalized-error
//!   evaluation (100% = random-init model, 0% = perfect),
//! * [`cost`] — the gate-level area comparison against direct digital
//!   operators.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
mod network;
pub mod tasks;

pub use network::NacNetwork;
pub use tasks::{normalized_error, AluTask, TaskResult};
