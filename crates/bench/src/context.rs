//! Shared experiment context: models, formatting, and simulation helpers.

use ncpu_bnn::data::{digits, motion};
use ncpu_bnn::train::{train, TrainConfig};
use ncpu_bnn::{BitVec, BnnLayer, BnnModel, Topology};

/// A deterministic pseudo-random model of the paper's shape. Timing-only
/// experiments use this — BNN cycle counts are weight-independent — so
/// they skip minutes of training.
pub fn pseudo_model(input: usize, neurons: usize, classes: usize) -> BnnModel {
    let topo = Topology::paper(input, neurons, classes);
    let mut layers = Vec::new();
    for l in 0..4 {
        let n_in = topo.layer_input(l);
        let rows: Vec<BitVec> = (0..neurons)
            .map(|j| BitVec::from_bools((0..n_in).map(|i| (i * 31 + j * 7 + l * 3) % 11 < 5)))
            .collect();
        let bias = (0..neurons).map(|j| (j as i32 % 7) - 3).collect();
        layers.push(BnnLayer::new(rows, bias));
    }
    BnnModel::new(topo, layers)
}

/// The paper's image model (784 → 4×`neurons` → 10).
pub fn image_pseudo_model(neurons: usize) -> BnnModel {
    pseudo_model(digits::PIXELS, neurons, digits::CLASSES)
}

/// The paper's motion model shape (216 → 4×100 → 8).
pub fn motion_pseudo_model() -> BnnModel {
    pseudo_model(motion::INPUT_BITS, 100, motion::CLASSES)
}

/// The digit datasets: real MNIST when its IDX files are found (set
/// `NCPU_MNIST_DIR`, or drop the four classic files in `data/mnist/`),
/// the synthetic generator otherwise. The third element names the source.
pub fn digits_datasets() -> (ncpu_bnn::data::Dataset, ncpu_bnn::data::Dataset, &'static str) {
    let dir = std::env::var("NCPU_MNIST_DIR").unwrap_or_else(|_| "data/mnist".to_string());
    if let Some((train, test)) = ncpu_bnn::data::idx::load_mnist(&dir) {
        return (train, test, "MNIST");
    }
    let (train, test) = digits::generate(&digits::DigitsConfig::default());
    (train, test, "synthetic digits")
}

/// Trains the digits classifier at `neurons` cells/layer; returns the
/// model, its held-out accuracy, and the dataset source. Deterministic;
/// takes tens of seconds in release mode at the default dataset size.
pub fn trained_digits(neurons: usize) -> (BnnModel, f64) {
    let (train_set, test_set, _) = digits_datasets();
    let topo = Topology::paper(digits::PIXELS, neurons, digits::CLASSES);
    // Wide arrays need more epochs to settle (STE noise grows with width).
    let epochs = if neurons >= 400 { 60 } else { 40 };
    let model = train(&topo, &train_set, &TrainConfig { epochs, ..TrainConfig::default() });
    let acc = ncpu_bnn::metrics::accuracy(&model, &test_set);
    (model, acc)
}

/// Trains the motion classifier; returns the model and its accuracy.
pub fn trained_motion() -> (BnnModel, f64) {
    let cfg = motion::MotionConfig::default();
    let (train_w, test_w) = motion::generate(&cfg);
    let train_set = motion::to_dataset(&train_w);
    let test_set = motion::to_dataset(&test_w);
    let topo = Topology::paper(motion::INPUT_BITS, 100, motion::CLASSES);
    let model = train(&topo, &train_set, &TrainConfig::default());
    let acc = ncpu_bnn::metrics::accuracy(&model, &test_set);
    (model, acc)
}

/// The DVFS sweep grid the power figures share: 0.40 V to 1.00 V in
/// 50 mV steps (the paper's measured operating range).
pub fn voltage_grid() -> Vec<f64> {
    (0..=12).map(|i| 0.4 + 0.05 * i as f64).collect()
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a frequency in MHz.
pub fn mhz(f_hz: f64) -> String {
    format!("{:.1} MHz", f_hz / 1.0e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pseudo_models_are_deterministic_and_shaped() {
        let a = image_pseudo_model(100);
        let b = image_pseudo_model(100);
        assert_eq!(a.layers()[0].weight_row(0), b.layers()[0].weight_row(0));
        assert_eq!(a.topology().input(), 784);
        assert_eq!(motion_pseudo_model().topology().input(), 216);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.357), "35.7%");
        assert_eq!(mhz(960.0e6), "960.0 MHz");
    }
}
