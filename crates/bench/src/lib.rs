//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each `experiments::*` function runs one experiment end-to-end on the
//! workspace's simulators and models and returns a formatted report. The
//! `src/bin/*` binaries are thin wrappers (`cargo run --release -p
//! ncpu-bench --bin fig13`), and `--bin paper` runs everything in order.
//!
//! Absolute cycle counts and watts come from this reproduction's
//! simulator + calibrated 65nm model, not from the authors' silicon; the
//! quantities to compare against the paper are the *relative* ones (see
//! `EXPERIMENTS.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod experiments;

/// A rendered experiment report.
#[derive(Debug, Clone)]
pub struct Report {
    /// Identifier, e.g. `"fig13"`.
    pub id: &'static str,
    /// Title line describing what the paper shows.
    pub title: &'static str,
    /// Formatted output lines.
    pub lines: Vec<String>,
}

impl Report {
    /// Renders the report to a string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}
