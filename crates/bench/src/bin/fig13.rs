//! Regenerates the paper's `fig13` (see EXPERIMENTS.md).
fn main() {
    print!("{}", ncpu_bench::experiments::fig13().render());
}
