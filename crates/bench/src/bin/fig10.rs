//! Regenerates the paper's `fig10` (see EXPERIMENTS.md).
fn main() {
    print!("{}", ncpu_bench::experiments::fig10().render());
}
