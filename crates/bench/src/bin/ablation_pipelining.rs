//! Regenerates the paper's `ablation_pipelining` (see EXPERIMENTS.md).
fn main() {
    print!("{}", ncpu_bench::experiments::ablation_pipelining().render());
}
