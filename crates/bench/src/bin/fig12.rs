//! Regenerates the paper's `fig12` (see EXPERIMENTS.md).
fn main() {
    print!("{}", ncpu_bench::experiments::fig12().render());
}
