//! Regenerates the paper's `fig18` (see EXPERIMENTS.md).
fn main() {
    print!("{}", ncpu_bench::experiments::fig18().render());
}
