//! Regenerates the paper's `table1` (see EXPERIMENTS.md).
fn main() {
    print!("{}", ncpu_bench::experiments::table1().render());
}
