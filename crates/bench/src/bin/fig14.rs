//! Regenerates the paper's `fig14` (see EXPERIMENTS.md).
fn main() {
    print!("{}", ncpu_bench::experiments::fig14().render());
}
