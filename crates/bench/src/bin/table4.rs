//! Regenerates the paper's `table4` (see EXPERIMENTS.md).
fn main() {
    print!("{}", ncpu_bench::experiments::table4().render());
}
