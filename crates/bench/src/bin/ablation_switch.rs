//! Regenerates the paper's `ablation_switch` (see EXPERIMENTS.md).
fn main() {
    print!("{}", ncpu_bench::experiments::ablation_switch().render());
}
