//! Runs every experiment in paper order (`cargo run --release -p
//! ncpu-bench --bin paper`), or a subset by id.
//!
//! With `NCPU_TRACE=counters|full` it additionally re-runs the flagship
//! dual-NCPU image-classification case traced and writes `RUN_image.json`
//! + `TRACE_image.json` into `NCPU_TRACE_DIR` (default `.`).
//!
//! With `NCPU_SELFPROF=1` the binary profiles its own wall-clock time —
//! one span per experiment plus the engine/fabric spans the simulators
//! emit — and writes `PROF_paper.folded` (flamegraph collapsed-stack
//! input), `PROF_paper.visits.folded` (visit counts: deterministic
//! across runs), and `PROF_paper.json` into `NCPU_TRACE_DIR`. The
//! profiler's tree is thread-local, so run with `NCPU_THREADS=1` to see
//! experiment spans nested under the main thread; with workers > 1 only
//! main-thread spans land in the report.
use std::env;

use ncpu_obs::{selfprof, TraceLevel};

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() {
        ncpu_bench::experiments::ALL_IDS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let prof_all = selfprof::span("paper");
    // Experiments are independent pure functions of their seeds, so they
    // fan out across the pool (`NCPU_THREADS`); reports come back in
    // request order and print serially, so stdout is byte-identical to
    // the sequential loop for every worker count.
    let reports = ncpu_par::par_map_indexed(ids, |_, id| {
        let _prof = selfprof::span(&format!("experiment.{id}"));
        (id, ncpu_bench::experiments::run_by_id(id))
    });
    for (id, report) in reports {
        match report {
            Some(report) => println!("{report}"),
            None => eprintln!(
                "unknown experiment `{id}` (known: {:?})",
                ncpu_bench::experiments::ALL_IDS
            ),
        }
    }

    write_traced_artifacts();

    if selfprof::enabled() {
        drop(prof_all); // close the root span so its wall time is recorded
        match selfprof::take().write_artifacts("paper") {
            Ok(paths) => {
                for p in paths {
                    eprintln!("selfprof artifact: {}", p.display());
                }
            }
            Err(e) => eprintln!("failed to write selfprof artifacts: {e}"),
        }
    }
}

/// The `NCPU_TRACE`-gated flagship traced re-run (moved out of `main` so
/// the self-profiler span around it has a stable name).
fn write_traced_artifacts() {
    let level = TraceLevel::from_env();
    if level != TraceLevel::Off {
        let _prof = selfprof::span("paper.traced_rerun");
        use ncpu_soc::Engine;
        let scenario = ncpu_soc::Scenario::new(
            ncpu_soc::UseCase::image(4, 60, 25),
            ncpu_soc::SystemConfig::Ncpu { cores: 2 },
        )
        .with_trace(level);
        let (report, rec) = ncpu_soc::Analytic.run(&scenario);
        let artifact = report.artifact(scenario.usecase().name(), &rec);
        match ncpu_obs::write_artifacts(&artifact, &rec, &report.thread_names()) {
            Ok((run_path, trace_path)) => {
                eprintln!("trace artifacts: {} and {}", run_path.display(), trace_path.display());
            }
            Err(e) => eprintln!("failed to write trace artifacts: {e}"),
        }
    }
}
