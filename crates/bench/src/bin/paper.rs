//! Runs every experiment in paper order (`cargo run --release -p
//! ncpu-bench --bin paper`), or a subset by id.
use std::env;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() {
        ncpu_bench::experiments::ALL_IDS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in ids {
        match ncpu_bench::experiments::run_by_id(id) {
            Some(report) => println!("{report}"),
            None => eprintln!("unknown experiment `{id}` (known: {:?})", ncpu_bench::experiments::ALL_IDS),
        }
    }
}
