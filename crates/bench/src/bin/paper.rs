//! Runs every experiment in paper order (`cargo run --release -p
//! ncpu-bench --bin paper`), or a subset by id.
//!
//! With `NCPU_TRACE=counters|full` it additionally re-runs the flagship
//! dual-NCPU image-classification case traced and writes `RUN_image.json`
//! + `TRACE_image.json` into `NCPU_TRACE_DIR` (default `.`).
use std::env;

use ncpu_obs::TraceLevel;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() {
        ncpu_bench::experiments::ALL_IDS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    // Experiments are independent pure functions of their seeds, so they
    // fan out across the pool (`NCPU_THREADS`); reports come back in
    // request order and print serially, so stdout is byte-identical to
    // the sequential loop for every worker count.
    let reports = ncpu_par::par_map_indexed(ids, |_, id| {
        (id, ncpu_bench::experiments::run_by_id(id))
    });
    for (id, report) in reports {
        match report {
            Some(report) => println!("{report}"),
            None => eprintln!(
                "unknown experiment `{id}` (known: {:?})",
                ncpu_bench::experiments::ALL_IDS
            ),
        }
    }

    let level = TraceLevel::from_env();
    if level != TraceLevel::Off {
        use ncpu_soc::Engine;
        let scenario = ncpu_soc::Scenario::new(
            ncpu_soc::UseCase::image(4, 60, 25),
            ncpu_soc::SystemConfig::Ncpu { cores: 2 },
        )
        .with_trace(level);
        let (report, rec) = ncpu_soc::Analytic.run(&scenario);
        let artifact = report.artifact(scenario.usecase().name(), &rec);
        match ncpu_obs::write_artifacts(&artifact, &rec, &report.thread_names()) {
            Ok((run_path, trace_path)) => {
                eprintln!("trace artifacts: {} and {}", run_path.display(), trace_path.display());
            }
            Err(e) => eprintln!("failed to write trace artifacts: {e}"),
        }
    }
}
