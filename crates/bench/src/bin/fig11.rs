//! Regenerates the paper's `fig11` (see EXPERIMENTS.md).
fn main() {
    print!("{}", ncpu_bench::experiments::fig11().render());
}
