//! Regenerates the paper's `fig15` (see EXPERIMENTS.md).
fn main() {
    print!("{}", ncpu_bench::experiments::fig15().render());
}
