//! Regenerates the mixed-workload extension study (see EXPERIMENTS.md).
fn main() {
    print!("{}", ncpu_bench::experiments::ext_multiprogram().render());
}
