//! Regenerates the paper's `fig19` (see EXPERIMENTS.md).
fn main() {
    print!("{}", ncpu_bench::experiments::fig19().render());
}
