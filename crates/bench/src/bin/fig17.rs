//! Regenerates the paper's `fig17` (see EXPERIMENTS.md).
fn main() {
    print!("{}", ncpu_bench::experiments::fig17().render());
}
