//! Regenerates the paper's `fig09` (see EXPERIMENTS.md).
fn main() {
    print!("{}", ncpu_bench::experiments::fig09().render());
}
