//! Regenerates the paper's Fig. 16 power traces (see EXPERIMENTS.md).
//!
//! With `--csv <dir>`, also writes one `fig16_<config>_<core>.csv` file per
//! trace for external plotting.
use ncpu_power::{AreaModel, PowerModel};
use ncpu_soc::{energy, run, SocConfig, SystemConfig, UseCase};

fn main() {
    print!("{}", ncpu_bench::experiments::fig16().render());
    let args: Vec<String> = std::env::args().collect();
    let Some(i) = args.iter().position(|a| a == "--csv") else { return };
    let dir = args.get(i + 1).map(String::as_str).unwrap_or(".");
    let uc = UseCase::image(2, 2, 1);
    let pm = PowerModel::default();
    let am = AreaModel::default();
    for system in [SystemConfig::Heterogeneous, SystemConfig::Ncpu { cores: 2 }] {
        let report = run(&uc, system, &SocConfig::default());
        let traces = energy::power_traces(&report, &pm, &am, 100, 1.0, 512);
        for (core, trace) in report.cores.iter().zip(&traces) {
            let path = format!(
                "{dir}/fig16_{}_{}.csv",
                report.config.replace([' ', 'x'], ""),
                core.role.replace('-', "_")
            );
            std::fs::write(&path, trace.to_csv()).expect("write CSV");
            eprintln!("wrote {path}");
        }
    }
}
