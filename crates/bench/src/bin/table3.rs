//! Regenerates the paper's `table3` (see EXPERIMENTS.md).
fn main() {
    print!("{}", ncpu_bench::experiments::table3().render());
}
