//! Regenerates the reliability-vs-voltage fault sweep (see EXPERIMENTS.md).
fn main() {
    print!("{}", ncpu_bench::experiments::ext_fault().render());
}
