//! Regenerates the lock-step co-simulation validation (see EXPERIMENTS.md).
fn main() {
    print!("{}", ncpu_bench::experiments::ext_lockstep().render());
}
