//! Regenerates the interface-cost sensitivity study (see EXPERIMENTS.md).
fn main() {
    print!("{}", ncpu_bench::experiments::ablation_interface().render());
}
