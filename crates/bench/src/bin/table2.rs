//! Regenerates the paper's `table2` (see EXPERIMENTS.md).
fn main() {
    print!("{}", ncpu_bench::experiments::table2().render());
}
