//! Regenerates the paper's `fig01` (see EXPERIMENTS.md).
fn main() {
    print!("{}", ncpu_bench::experiments::fig01().render());
}
