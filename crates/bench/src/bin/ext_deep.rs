//! Regenerates the Section VIII-A extension study (see EXPERIMENTS.md).
fn main() {
    print!("{}", ncpu_bench::experiments::ext_deep().render());
}
