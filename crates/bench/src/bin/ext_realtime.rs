//! Regenerates the deadline-voltage frontier study (see EXPERIMENTS.md).
fn main() {
    print!("{}", ncpu_bench::experiments::ext_realtime().render());
}
