//! Regenerates the paper's `ablation_offload` (see EXPERIMENTS.md).
fn main() {
    print!("{}", ncpu_bench::experiments::ablation_offload().render());
}
