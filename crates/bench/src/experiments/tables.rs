//! Tables I–III.

use ncpu_accel::{AccelConfig, Accelerator};
use ncpu_bnn::data::motion;
use ncpu_pipeline::{FlatMem, Pipeline};
use ncpu_power::{AreaModel, CoreKind, PowerModel};
use ncpu_soc::energy::task_energy_uj;
use ncpu_soc::{Analytic, Engine, Scenario, SystemConfig, UseCase};
use ncpu_workloads::{dhrystone, motion as motion_prog, softbnn, Tail};
use ncpu_testkit::rng::Rng;

use crate::context::{digits_datasets, mhz, pct, trained_digits, trained_motion};
use crate::Report;

/// Table I: one motion detection with the 5 ms real-time deadline —
/// standalone CPU vs CPU + BNN accelerator, at 0.4 V.
pub fn table1() -> Report {
    let (model, acc) = trained_motion();
    let mut rng = Rng::seed_from_u64(55);
    let window = motion::generate_window(3, motion::MotionConfig::default().noise, &mut rng);

    // Feature extraction on the CPU (common to both systems).
    let layout = motion_prog::MotionLayout::default();
    let fe_program = motion_prog::feature_program(&layout, layout.pack, Tail::Halt);
    let mut cpu = Pipeline::new(fe_program, FlatMem::new(4096));
    cpu.mem_mut().local_mut()[..motion_prog::STAGE_BYTES]
        .copy_from_slice(&motion_prog::stage_bytes(&window));
    let feature_cycles = cpu.run(100_000_000).expect("feature extraction");
    let input = motion::window_to_input(&window);

    // Standalone CPU: software BNN inference.
    let soft = softbnn::build(&model);
    let mut cpu2 = Pipeline::new(soft.program.clone(), FlatMem::new(32 * 1024));
    cpu2.mem_mut().local_mut()[..soft.data.len()].copy_from_slice(&soft.data);
    let staged = softbnn::stage_input(&input);
    let at = soft.layout.input as usize;
    cpu2.mem_mut().local_mut()[at..at + staged.len()].copy_from_slice(&staged);
    let soft_cycles = cpu2.run(500_000_000).expect("software BNN");
    let cpu_only_cycles = feature_cycles + soft_cycles;

    // CPU + accelerator.
    let mut accel = Accelerator::new(model.clone(), AccelConfig::default());
    let (_, accel_cycles) = accel.infer(&input);
    let hetero_cycles = feature_cycles + accel_cycles;

    let pm = PowerModel::default();
    let am = AreaModel::default();
    let v = 0.4;
    let f = pm.dvfs.freq_hz(v, CoreKind::StandaloneCpu);
    let ms = |cycles: u64| cycles as f64 / f * 1.0e3;

    let cpu_area = am.cpu_core();
    let both = am.heterogeneous(100);
    let e_cpu_only = task_energy_uj(&pm, CoreKind::StandaloneCpu, &cpu_area, cpu_only_cycles, v);
    // Heterogeneous: CPU active during features, accelerator during
    // inference; both cores leak throughout.
    let e_hetero = task_energy_uj(&pm, CoreKind::StandaloneCpu, &both, feature_cycles, v)
        + task_energy_uj(&pm, CoreKind::StandaloneBnn, &both, accel_cycles, v);

    let lines = vec![
        format!("motion classifier accuracy: {} (paper 74%)", pct(acc)),
        format!("operating point: {v} V, {}", mhz(f)),
        format!(
            "standalone CPU : {:>9} cycles = {:>7.2} ms, {:>7.2} µJ  {}",
            cpu_only_cycles,
            ms(cpu_only_cycles),
            e_cpu_only,
            if ms(cpu_only_cycles) > 5.0 { "(misses 5 ms deadline)" } else { "" }
        ),
        format!(
            "CPU w/ BNN acc.: {:>9} cycles = {:>7.2} ms, {:>7.2} µJ  {}",
            hetero_cycles,
            ms(hetero_cycles),
            e_hetero,
            if ms(hetero_cycles) <= 5.0 { "(meets 5 ms deadline)" } else { "" }
        ),
        format!(
            "speedup {:.0}× (paper 59×), energy reduction {:.0}× (paper 36×)",
            cpu_only_cycles as f64 / hetero_cycles as f64,
            e_cpu_only / e_hetero
        ),
    ];
    Report { id: "table1", title: "motion detection vs the 5 ms real-time budget", lines }
}

/// Table II: CPU mode vs commercial microcontrollers.
pub fn table2() -> Report {
    let iters = 500u32;
    let program = dhrystone::program(iters);
    let mut cpu = Pipeline::new(program, FlatMem::new(2048));
    let cycles = cpu.run(100_000_000).expect("dhrystone");
    let score = dhrystone::dmips_per_mhz(iters, cycles);
    let ipc = cpu.stats().ipc();

    let pm = PowerModel::default();
    let am = AreaModel::default();
    let areas = am.ncpu_core(100);
    let f04 = pm.dvfs.freq_hz(0.4, CoreKind::NcpuCpuMode);
    let f1 = pm.dvfs.freq_hz(1.0, CoreKind::NcpuCpuMode);
    let p04 = pm.total_mw(CoreKind::NcpuCpuMode, &areas, 0.4, 1.0);
    let p1 = pm.total_mw(CoreKind::NcpuCpuMode, &areas, 1.0, 1.0);
    let dmips_04 = score * f04 / 1.0e6;

    let mut lines = vec![format!(
        "{:<22} {:>9} {:>7} {:>11} {:>12} {:>14} {:>14}",
        "core", "datapath", "stages", "voltage", "freq (MHz)", "DMIPS/MHz", "DMIPS/mW"
    )];
    // Datasheet rows the paper cites (Table II).
    for (name, dp, st, v, f, d, e) in [
        ("Microchip PIC18 [53]", "8b", 2, "3", 64.0, 0.25, 0.43),
        ("TI MSP432 [54]", "32b", 3, "3", 48.0, 1.22, 2.57),
        ("Microchip SAMA5 [55]", "32b", 8, "1.26", 600.0, 1.57, 4.11),
        ("SiFive E31 [56]", "32b", 5, "1", 250.0, 1.61, 2.68),
    ] {
        lines.push(format!(
            "{name:<22} {dp:>9} {st:>7} {v:>11} {f:>12.0} {d:>14.2} {e:>14.2}"
        ));
    }
    lines.push(format!(
        "{:<22} {:>9} {:>7} {:>11} {:>12.1} {:>14.2} {:>14.2}",
        "NCPU (this repro)",
        "32b",
        5,
        "0.4-1",
        f04 / 1.0e6,
        score,
        dmips_04 / p04
    ));
    lines.push(format!(
        "measured: {cycles} cycles / {iters} iterations, IPC {ipc:.2}; \
         {:.1}-{:.0} MHz and {p04:.2}-{p1:.0} mW across 0.4-1 V \
         (paper: 0.86 DMIPS/MHz, 8.26 DMIPS/mW)",
        f04 / 1.0e6,
        f1 / 1.0e6
    ));
    Report { id: "table2", title: "CPU mode vs commercial microcontrollers", lines }
}

/// Table III: BNN mode vs published ML accelerators.
pub fn table3() -> Report {
    let (model, acc) = trained_digits(100);
    let (_, _, dataset) = digits_datasets();
    let accel = Accelerator::new(model, AccelConfig::default());
    let pm = PowerModel::default();
    let mut lines = vec![format!(
        "{:<22} {:>8} {:>9} {:>9} {:>10} {:>12}",
        "design", "process", "datapath", "dataset", "accuracy", "TOPS/W"
    )];
    for (name, process, dp, ds, a, eff) in [
        ("ISSCC'17 [2]", "28nm", "8b", "MNIST", "98.36%", "1.2"),
        ("ISSCC'19 [44]", "65nm", "8b", "MNIST", "98.06%", "3.42"),
        ("JSSC'18 [40]", "65nm", "1b", "MNIST", "90.1%", "6.0"),
        ("ISSCC'18 [41]", "28nm", "1b", "CIFAR-10", "86.05%", "532"),
    ] {
        lines.push(format!(
            "{name:<22} {process:>8} {dp:>9} {ds:>9} {a:>10} {eff:>12}"
        ));
    }
    lines.push(format!(
        "{:<22} {:>8} {:>9} {:>9} {:>10} {:>12}",
        "NCPU (this repro)",
        "65nm*",
        "1b",
        if dataset == "MNIST" { "MNIST" } else { "digits*" },
        pct(acc),
        format!("{:.1}/{:.1}", pm.bnn_tops_per_watt(1.0, 400), pm.bnn_tops_per_watt(0.4, 400))
    ));
    let interval = accel.pipelined_interval();
    lines.push(format!(
        "* modeled 65nm; dataset = {dataset} (drop IDX files in data/mnist/ or set \
         NCPU_MNIST_DIR for the real thing); paper: 94.8% MNIST, 1.6 TOPS/W @1V, \
         6.0 @0.4V; throughput 1 image / {interval} cycles"
    ));
    Report { id: "table3", title: "BNN mode vs published accelerators", lines }
}

/// Extension of Table I: the lowest supply voltage at which each system
/// still meets the 5 ms motion-detection deadline, and the energy per
/// detection at that operating point — the paper's real-time argument
/// turned into a voltage/energy frontier.
pub fn ext_realtime() -> Report {
    let deadline_s = 5.0e-3;
    // Timing does not depend on trained weights; use the canonical shapes.
    let model = crate::context::motion_pseudo_model();
    let mut rng = Rng::seed_from_u64(55);
    let window = motion::generate_window(3, motion::MotionConfig::default().noise, &mut rng);

    let layout = motion_prog::MotionLayout::default();
    let fe_program = motion_prog::feature_program(&layout, layout.pack, Tail::Halt);
    let mut cpu = Pipeline::new(fe_program, FlatMem::new(4096));
    cpu.mem_mut().local_mut()[..motion_prog::STAGE_BYTES]
        .copy_from_slice(&motion_prog::stage_bytes(&window));
    let feature_cycles = cpu.run(100_000_000).expect("feature extraction");

    let soft = softbnn::build(&model);
    let mut cpu2 = Pipeline::new(soft.program.clone(), FlatMem::new(32 * 1024));
    cpu2.mem_mut().local_mut()[..soft.data.len()].copy_from_slice(&soft.data);
    let input = motion::window_to_input(&window);
    let staged = softbnn::stage_input(&input);
    let at = soft.layout.input as usize;
    cpu2.mem_mut().local_mut()[at..at + staged.len()].copy_from_slice(&staged);
    let soft_cycles = cpu2.run(500_000_000).expect("software BNN");

    // The accelerated systems' cycle counts come from real end-to-end
    // scenario runs of a one-window motion batch (DMA staging, offload,
    // and mode switches included), not a hand-summed estimate.
    let uc = UseCase::motion(1, 4, 2);
    let hetero_cycles =
        Analytic.report(&Scenario::new(uc.clone(), SystemConfig::Heterogeneous)).makespan;
    let ncpu_cycles =
        Analytic.report(&Scenario::new(uc, SystemConfig::Ncpu { cores: 1 })).makespan;

    let pm = PowerModel::default();
    let am = AreaModel::default();
    let systems: [(&str, u64, CoreKind, ncpu_power::SystemAreas); 3] = [
        ("standalone CPU", feature_cycles + soft_cycles, CoreKind::StandaloneCpu, am.cpu_core()),
        ("CPU + BNN accel", hetero_cycles, CoreKind::StandaloneCpu, am.heterogeneous(100)),
        ("NCPU (1 core)", ncpu_cycles, CoreKind::NcpuCpuMode, am.ncpu_core(100)),
    ];
    let mut lines = vec![format!(
        "{:<16} {:>10} {:>8} {:>11} {:>12}",
        "system", "cycles", "Vmin", "latency", "energy/det"
    )];
    for (name, cycles, kind, areas) in systems {
        // Lowest grid voltage meeting the deadline (None if even 1 V misses).
        let vmin = (0..=60)
            .map(|i| 0.4 + 0.01 * i as f64)
            .find(|&v| cycles as f64 / pm.dvfs.freq_hz(v, kind) <= deadline_s);
        match vmin {
            Some(v) => {
                let latency_ms = cycles as f64 / pm.dvfs.freq_hz(v, kind) * 1e3;
                let energy = task_energy_uj(&pm, kind, &areas, cycles, v);
                lines.push(format!(
                    "{name:<16} {cycles:>10} {v:>7.2}V {latency_ms:>9.2}ms {energy:>10.2}µJ"
                ));
            }
            None => lines.push(format!(
                "{name:<16} {cycles:>10} {:>8} {:>11} {:>12}",
                "—", "misses", "—"
            )),
        }
    }
    lines.push(
        "the accelerated systems meet the deadline at the 0.4 V floor; the \
         software-only CPU must climb to ~0.7 V and burns ~60× the energy per \
         detection — and the single NCPU beats the heterogeneous pair outright \
         (one core's leakage instead of two). Paper context: at the fixed 18 MHz \
         / 0.4 V point of Table I the software CPU misses the deadline entirely."
            .to_string(),
    );
    Report { id: "ext_realtime", title: "minimum deadline-meeting voltage (5 ms motion)", lines }
}
