//! Power/area experiments: Fig. 9, Fig. 10, Fig. 11, Fig. 12.

use ncpu_power::{
    instruction_energy_factor, ncpu_instruction_overhead, AreaModel, CoreKind, PowerModel,
};
use ncpu_workloads::kernels;

use crate::context::{mhz, pct, voltage_grid};
use crate::Report;

/// Fig. 9: measured power, frequency, energy and BNN efficiency vs supply
/// voltage for both operating modes.
pub fn fig09() -> Report {
    let pm = PowerModel::default();
    let am = AreaModel::default();
    let areas = am.ncpu_core(100);
    let mut lines = vec![format!(
        "{:>5} {:>10} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "V", "freq", "P_bnn mW", "P_cpu mW", "E_bnn pJ/cy", "E_cpu pJ/cy", "TOPS/W"
    )];
    // One pool task per grid voltage, rows collected in grid order.
    let rows = ncpu_par::par_map_indexed(voltage_grid(), |_, v| {
        let f = pm.dvfs.freq_hz(v, CoreKind::NcpuBnnMode);
        let p_bnn = pm.total_mw(CoreKind::NcpuBnnMode, &areas, v, 1.0);
        let p_cpu = pm.total_mw(CoreKind::NcpuCpuMode, &areas, v, 1.0);
        let e_bnn = pm.energy_per_cycle_pj(CoreKind::NcpuBnnMode, &areas, v, 1.0);
        let e_cpu = pm.energy_per_cycle_pj(CoreKind::NcpuCpuMode, &areas, v, 1.0);
        let tops = pm.bnn_tops_per_watt(v, 400);
        let row = format!(
            "{v:>5.2} {:>10} {p_bnn:>12.2} {p_cpu:>12.2} {e_bnn:>12.1} {e_cpu:>12.1} {tops:>10.2}",
            mhz(f)
        );
        ((v, e_cpu), row)
    });
    let mut cpu_energy = Vec::with_capacity(rows.len());
    for ((v, e_cpu), row) in rows {
        cpu_energy.push((v, e_cpu));
        lines.push(row);
    }
    let mep = cpu_energy
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("nonempty")
        .0;
    lines.push(format!(
        "CPU-mode minimum-energy point: {mep:.2} V (paper: 0.5 V); BNN energy \
         falls monotonically to 0.4 V (paper: no MEP above malfunction)"
    ));
    lines.push(format!(
        "anchors: {} / {:.0} mW BNN @1V (paper 960 MHz / 241 mW); {:.2} TOPS/W @1V, \
         {:.2} @0.4V (paper 1.6 / 6.0)",
        mhz(pm.dvfs.freq_hz(1.0, CoreKind::StandaloneBnn)),
        pm.dynamic_mw(CoreKind::StandaloneBnn, 1.0, 1.0),
        pm.bnn_tops_per_watt(1.0, 400),
        pm.bnn_tops_per_watt(0.4, 400),
    ));
    Report { id: "fig09", title: "power/frequency/energy/efficiency vs supply voltage", lines }
}

/// Fig. 10: NCPU area overhead per neural stage and fmax degradation.
pub fn fig10() -> Report {
    let am = AreaModel::default();
    let pm = PowerModel::default();
    let o = am.ncpu_stage_overhead(100);
    let base = am.bnn_logic_mm2(100);
    let mut lines = vec!["added logic per stage (vs bare BNN core logic):".to_string()];
    for (name, mm2) in [
        ("NeuroPC", o.pc_mm2),
        ("NeuroIF", o.if_mm2),
        ("NeuroID", o.id_mm2),
        ("NeuroEX", o.ex_mm2),
        ("NeuroMEM", o.mem_mm2),
    ] {
        lines.push(format!("  {name:<9} {:>8.4} mm²  ({})", mm2, pct(mm2 / base)));
    }
    lines.push(format!(
        "core overhead {} (paper 13.1%); with SRAM {} (paper 2.7%)",
        pct(am.core_logic_overhead(100)),
        pct(am.total_overhead(100)),
    ));
    let f = |k| pm.dvfs.freq_hz(1.0, k);
    lines.push(format!(
        "fmax: BNN mode {} vs standalone {} (−4.1%); CPU mode {} (−5.2%)",
        mhz(f(CoreKind::NcpuBnnMode)),
        mhz(f(CoreKind::StandaloneBnn)),
        mhz(f(CoreKind::NcpuCpuMode)),
    ));
    Report { id: "fig10", title: "NCPU area overhead and fmax degradation", lines }
}

/// Fig. 11: power overhead of the NCPU vs the standalone cores — BNN mode,
/// MiBench-style kernels, and per-instruction breakdown.
pub fn fig11() -> Report {
    let pm = PowerModel::default();
    let mut lines = vec![format!(
        "BNN mode (MNIST inference): +{} dynamic power vs standalone accelerator (paper +5.8%)",
        pct(pm.ncpu_bnn_overhead)
    )];
    lines.push("CPU mode, per kernel (retire-mix-weighted):".to_string());
    let mut total_base = 0.0;
    let mut total_ncpu = 0.0;
    for kernel in kernels::all() {
        let (_, stats) = kernel.run();
        let (mut e_base, mut e_ncpu) = (0.0f64, 0.0f64);
        for (mnemonic, count) in &stats.per_instr {
            let e = instruction_energy_factor(mnemonic) * *count as f64;
            e_base += e;
            e_ncpu += e * ncpu_instruction_overhead(mnemonic);
        }
        total_base += e_base;
        total_ncpu += e_ncpu;
        lines.push(format!(
            "  {:<13} +{}",
            kernel.name,
            pct(e_ncpu / e_base - 1.0)
        ));
    }
    lines.push(format!(
        "  kernel average +{} (paper ~15%)",
        pct(total_ncpu / total_base - 1.0)
    ));
    lines.push("per-instruction overhead (paper Fig. 11(b), avg 14.7%):".to_string());
    let mut avg = 0.0;
    for chunk in ncpu_isa::Instruction::RV32I_BASE_MNEMONICS.chunks(10) {
        let row: Vec<String> = chunk
            .iter()
            .map(|m| format!("{m}:{}", pct(ncpu_instruction_overhead(m) - 1.0)))
            .collect();
        lines.push(format!("  {}", row.join(" ")));
    }
    for m in ncpu_isa::Instruction::RV32I_BASE_MNEMONICS {
        avg += ncpu_instruction_overhead(m) - 1.0;
    }
    lines.push(format!("  average +{}", pct(avg / 37.0)));
    Report { id: "fig11", title: "NCPU power overhead vs standalone cores", lines }
}

/// Fig. 12: area reduction vs the heterogeneous pair, and task energy
/// saving vs voltage (crossover near 0.6 V).
pub fn fig12() -> Report {
    let am = AreaModel::default();
    let pm = PowerModel::default();
    let bnn = am.bnn_core(100);
    let cpu = am.cpu_core();
    let hetero = am.heterogeneous(100);
    let ncpu = am.ncpu_core(100);
    let mut lines = vec!["(a) area (compute + SRAM), mm²:".to_string()];
    for (name, a) in [("BNN", bnn), ("CPU", cpu), ("CPU+BNN", hetero), ("NCPU", ncpu)] {
        lines.push(format!(
            "  {name:<8} {:>6.3} = {:.3} logic + {:.3} SRAM",
            a.total_mm2(),
            a.logic_mm2,
            a.sram_mm2
        ));
    }
    lines.push(format!(
        "  NCPU saves {} vs CPU+BNN (paper 35.7%)",
        pct(am.area_saving(100))
    ));

    lines.push("(b) MNIST-inference energy saving of NCPU vs heterogeneous:".to_string());
    // One inference occupies the array for its full latency; the baseline
    // keeps both cores powered (the idle CPU leaks).
    let cycles = 785 + 3 * 101;
    // One pool task per grid voltage, collected in grid order.
    let savings: Vec<(f64, f64)> = ncpu_par::par_map_indexed(voltage_grid(), |_, v| {
            let f_ncpu = pm.dvfs.freq_hz(v, CoreKind::NcpuBnnMode);
            let f_base = pm.dvfs.freq_hz(v, CoreKind::StandaloneBnn);
            let e_ncpu = (pm.dynamic_mw(CoreKind::NcpuBnnMode, v, 1.0)
                + pm.leakage_mw(&ncpu, v))
                / f_ncpu
                * cycles as f64;
            let e_base = (pm.dynamic_mw(CoreKind::StandaloneBnn, v, 1.0)
                + pm.leakage_mw(&hetero, v))
                / f_base
                * cycles as f64;
            (v, 1.0 - e_ncpu / e_base)
    });
    for &(v, saving) in &savings {
        lines.push(format!("  {v:.2} V: saving {:>7}", pct(saving)));
    }
    if let Some(&(v, _)) = savings.iter().find(|&&(_, s)| s <= 0.0) {
        lines.push(format!(
            "  crossover ≈ {v:.2} V (paper: −7.2% at 1 V turning into +12.6% at 0.4 V, \
             crossing near 0.6 V)"
        ));
    }
    Report { id: "fig12", title: "area reduction and energy saving vs heterogeneous", lines }
}
