//! End-to-end experiments: Fig. 1, Figs. 13–17 and Table IV.
//!
//! Every system run is described by a [`Scenario`] and executed through
//! the [`Engine`] trait (the fast [`Analytic`] engine here), so the
//! `ncpu-par` fan-outs hand whole scenarios to the pool instead of
//! ad-hoc tuples — see EXPERIMENTS.md for the figure → scenario map.

use ncpu_bnn::data::{digits, motion};
use ncpu_power::{AreaModel, PowerModel};
use ncpu_soc::{
    energy, phases, run_independent, Analytic, Engine, Scenario, SocConfig, SystemConfig,
    UseCase,
};
use ncpu_workloads::{image, motion as motion_prog, Tail};
use ncpu_testkit::rng::Rng;

use crate::context::{image_pseudo_model, motion_pseudo_model, pct};
use crate::Report;

/// Cycles one image/window spends in the accelerator array.
fn infer_cycles(model: &ncpu_bnn::BnnModel) -> u64 {
    let topo = model.topology();
    (0..topo.layers().len())
        .map(|l| topo.layer_input(l) as u64 + ncpu_accel::SIGN_CYCLES)
        .sum()
}

/// The baseline-vs-dual pair of scenarios every headline figure runs.
fn versus_dual(uc: &UseCase) -> [Scenario; 2] {
    [
        Scenario::new(uc.clone(), SystemConfig::Heterogeneous),
        Scenario::new(uc.clone(), SystemConfig::Ncpu { cores: 2 }),
    ]
}

/// Measured CPU pre-processing cycles of each use case.
fn preprocess_cycles() -> (u64, u64) {
    let mut rng = Rng::seed_from_u64(3);
    let raw = digits::render_raw(4, 0.1, &mut rng);
    let layout = image::ImageLayout::default();
    let program = image::preprocess_program(&layout, layout.pack, Tail::Halt);
    let img = phases::measure_program(program, &image::stage_bytes(&raw), 16 * 1024);

    let w = motion::generate_window(2, 9000.0, &mut rng);
    let layout = motion_prog::MotionLayout::default();
    let program = motion_prog::feature_program(&layout, layout.pack, Tail::Halt);
    let mot = phases::measure_program(program, &motion_prog::stage_bytes(&w), 4096);
    (img.total_cycles, mot.total_cycles)
}

/// Fig. 1: CPU pre-processing dominates end-to-end runtime.
pub fn fig01() -> Report {
    let (img_cpu, mot_cpu) = preprocess_cycles();
    let img_bnn = infer_cycles(&image_pseudo_model(100));
    let mot_bnn = infer_cycles(&motion_pseudo_model());
    let mut lines = vec!["CPU pre-processing share of end-to-end runtime:".to_string()];
    lines.push(format!(
        "  this work, image classification: {} ({img_cpu} CPU / {img_bnn} BNN cycles)",
        pct(img_cpu as f64 / (img_cpu + img_bnn) as f64)
    ));
    lines.push(format!(
        "  this work, motion detection:     {} ({mot_cpu} CPU / {mot_bnn} BNN cycles)",
        pct(mot_cpu as f64 / (mot_cpu + mot_bnn) as f64)
    ));
    lines.push("  literature values cited by the paper (Fig. 1):".to_string());
    for (label, share) in [
        ("ISSCC'18 [12]", 0.93),
        ("ISSCC'19 [13]", 0.80),
        ("ISCA'17 [8]", 0.62),
        ("NIPS'18 [22]", 0.67),
    ] {
        lines.push(format!("    {label:<14} {}", pct(share)));
    }
    lines.push(
        "note: our accelerator model is faster relative to the CPU than the paper's \
         silicon, so our shares sit above the cited 60-90% band"
            .to_string(),
    );
    Report { id: "fig01", title: "low accelerator utilization in heterogeneous SoCs", lines }
}

/// Fig. 13: end-to-end gain at CPU workload fractions 40% and 70%.
pub fn fig13() -> Report {
    let model = image_pseudo_model(100);
    let points = [(0.4, 0.285), (0.7, 0.412)];
    // One pool task per scenario (baseline and dual for each fraction);
    // reports come back in sweep order.
    let scenarios: Vec<Scenario> = points
        .iter()
        .flat_map(|&(fraction, _)| versus_dual(&UseCase::parametric(fraction, 2, model.clone())))
        .collect();
    let reports = ncpu_par::par_map_indexed(scenarios, |_, s| Analytic.report(&s));
    let mut lines = Vec::new();
    for (k, &(fraction, paper)) in points.iter().enumerate() {
        let (base, dual) = (&reports[2 * k], &reports[2 * k + 1]);
        lines.push(format!(
            "CPU fraction {}: baseline {} cy, 2×NCPU {} cy → improvement {} (paper {})",
            pct(fraction),
            base.makespan,
            dual.makespan,
            pct(dual.improvement_over(base)),
            pct(paper)
        ));
        for core in &base.cores {
            lines.push(format!(
                "  baseline {:<10} util {}",
                core.role,
                pct(core.utilization(base.makespan))
            ));
        }
        for core in &dual.cores {
            lines.push(format!(
                "  ncpu     {:<10} util {}",
                core.role,
                pct(core.utilization(dual.makespan))
            ));
        }
    }
    Report { id: "fig13", title: "core utilization and gain vs CPU workload fraction", lines }
}

/// Fig. 14: end-to-end benefit vs image batch size at 70% CPU fraction.
pub fn fig14() -> Report {
    let model = image_pseudo_model(100);
    let batches = [2usize, 6, 10, 20, 50, 100];
    let mut lines =
        vec![format!("{:>6} {:>12} {:>12} {:>12}", "batch", "baseline cy", "2xNCPU cy", "gain")];
    // One pool task per scenario, rows assembled in sweep order.
    let scenarios: Vec<Scenario> = batches
        .iter()
        .flat_map(|&batch| versus_dual(&UseCase::parametric(0.7, batch, model.clone())))
        .collect();
    let reports = ncpu_par::par_map_indexed(scenarios, |_, s| Analytic.report(&s));
    for (k, batch) in batches.iter().enumerate() {
        let (base, dual) = (&reports[2 * k], &reports[2 * k + 1]);
        lines.push(format!(
            "{batch:>6} {:>12} {:>12} {:>12}",
            base.makespan,
            dual.makespan,
            pct(dual.improvement_over(base))
        ));
    }
    lines.push("paper: gain declines with batch but stays above 37% at batch 100".to_string());
    Report { id: "fig14", title: "end-to-end benefit vs image batch size", lines }
}

/// Fig. 15: runtime breakdown of both use cases.
pub fn fig15() -> Report {
    let mut rng = Rng::seed_from_u64(3);
    let mut lines = Vec::new();

    let raw = digits::render_raw(4, 0.1, &mut rng);
    let layout = image::ImageLayout::default();
    let program = image::preprocess_program(&layout, layout.pack, Tail::Halt);
    let b = phases::measure_program(program, &image::stage_bytes(&raw), 16 * 1024);
    let bnn = infer_cycles(&image_pseudo_model(100));
    let total = b.total_cycles + bnn;
    lines.push("image classification (paper: resize 30%, filter 32%, norm 12%, BNN 24%):".into());
    for (label, id) in [
        ("resize", image::phase::RESIZE_DONE),
        ("grayscale filter", image::phase::FILTER_DONE),
        ("normalization", image::phase::NORMALIZE_DONE),
    ] {
        lines.push(format!("  {label:<17} {}", pct(b.share_of(id, total))));
    }
    lines.push(format!("  {:<17} {}", "BNN inference", pct(bnn as f64 / total as f64)));

    let w = motion::generate_window(2, 9000.0, &mut rng);
    let layout = motion_prog::MotionLayout::default();
    let program = motion_prog::feature_program(&layout, layout.pack, Tail::Halt);
    let b = phases::measure_program(program, &motion_prog::stage_bytes(&w), 4096);
    let bnn = infer_cycles(&motion_pseudo_model());
    let total = b.total_cycles + bnn;
    lines.push("motion detection (paper: mean 22%, histogram 46%, BNN 32%):".into());
    for (label, id) in [
        ("mean", motion_prog::phase::MEAN_DONE),
        ("histogram", motion_prog::phase::HIST_DONE),
        ("encode/pack", motion_prog::phase::ENCODE_DONE),
    ] {
        lines.push(format!("  {label:<17} {}", pct(b.share_of(id, total))));
    }
    lines.push(format!("  {:<17} {}", "BNN inference", pct(bnn as f64 / total as f64)));
    lines.push(
        "shapes hold (filter > resize > norm; histogram > mean); our BNN share is \
         smaller because the modeled array outruns the paper's silicon relative to the CPU"
            .to_string(),
    );
    Report { id: "fig15", title: "runtime CPU/BNN workload breakdown", lines }
}

/// Fig. 16: power traces of the image use case, baseline vs two NCPUs.
pub fn fig16() -> Report {
    let uc = UseCase::image(2, 2, 1); // timing-only: tiny training
    let [s_base, s_dual] = versus_dual(&uc).map(|s| s.with_operating_point(1.0));
    let base = Analytic.report(&s_base);
    let dual = Analytic.report(&s_dual);
    let pm = PowerModel::default();
    let am = AreaModel::default();
    let mut lines = vec![format!(
        "baseline {} cy vs 2×NCPU {} cy → {} speedup (paper 43%)",
        base.makespan,
        dual.makespan,
        pct(dual.improvement_over(&base))
    )];
    for (name, scenario, report) in [("baseline", &s_base, &base), ("2x ncpu", &s_dual, &dual)] {
        let bucket = (report.makespan / 24).max(1);
        let traces = energy::power_traces(report, &pm, &am, 100, scenario.volts(), bucket);
        for (core, trace) in report.cores.iter().zip(&traces) {
            let samples = trace.samples();
            let peak = samples.iter().cloned().fold(1.0e-9, f64::max);
            let bars: String = samples
                .iter()
                .map(|&s| {
                    let level = (s / peak * 7.0).round() as usize;
                    [' ', '.', ':', '-', '=', '+', '*', '#'][level.min(7)]
                })
                .collect();
            lines.push(format!("  {name:<9} {:<10} |{bars}|", core.role));
        }
    }
    lines.push("power trace @1 V, one column per time bucket (# = peak draw)".to_string());
    Report { id: "fig16", title: "measured power traces, image classification", lines }
}

/// Table IV: core utilization rates for the Fig. 16 runs.
pub fn table4() -> Report {
    let mut lines = vec!["core utilization over the end-to-end run:".to_string()];
    // (a) the real image use case as implemented here.
    let uc = UseCase::image(2, 2, 1);
    // (b) the parametric workload at the paper's CPU/BNN balance (the
    // paper's image pipeline leaves ~24% of the work to the BNN; ours
    // leaves ~1%, so the balanced run is the comparable row).
    let balanced = UseCase::parametric(0.76, 2, image_pseudo_model(100));
    for (tag, uc) in [("image use case", &uc), ("paper's CPU/BNN balance", &balanced)] {
        let [base, dual] = versus_dual(uc).map(|s| Analytic.report(&s));
        lines.push(format!("{tag}:"));
        for (name, report) in [("baseline", &base), ("2x ncpu", &dual)] {
            for core in &report.cores {
                lines.push(format!(
                    "  {name:<9} {:<10} {}",
                    core.role,
                    pct(core.utilization(report.makespan))
                ));
            }
        }
    }
    lines.push(
        "paper: baseline CPU 80.2% / BNN 39.4%; NCPUs 99.3% each — same shape: \
         busy CPU, starved accelerator, saturated NCPUs"
            .to_string(),
    );
    Report { id: "table4", title: "core utilization rates", lines }
}

/// Fig. 17: normalized end-to-end latency of both use cases on the three
/// configurations, plus the equivalent-energy conversion.
pub fn fig17() -> Report {
    let pm = PowerModel::default();
    let am = AreaModel::default();
    let mut lines = Vec::new();
    for (name, uc, paper_gain, paper_single) in [
        ("image", UseCase::image(2, 2, 1), 0.43, 0.138),
        ("motion", UseCase::motion(2, 4, 1), 0.35, 0.018),
    ] {
        let nominal = Scenario::new(uc, SystemConfig::Heterogeneous).with_operating_point(1.0);
        let base = Analytic.report(&nominal);
        let single = Analytic
            .report(&Scenario::new(nominal.usecase().clone(), SystemConfig::Ncpu { cores: 1 }));
        let dual = Analytic
            .report(&Scenario::new(nominal.usecase().clone(), SystemConfig::Ncpu { cores: 2 }));
        let single_delta = single.makespan as f64 / base.makespan as f64 - 1.0;
        lines.push(format!(
            "{name}: normalized latency — 1 NCPU {:.3} (paper +{:.1}%), CPU+BNN 1.000, \
             2 NCPU {:.3} (paper −{:.0}%)",
            1.0 + single_delta,
            paper_single * 100.0,
            dual.makespan as f64 / base.makespan as f64,
            paper_gain * 100.0
        ));
        lines.push(format!(
            "  2×NCPU gain {}; equivalent energy saving at matched latency: {} \
             (paper: up to 74%; our measured-fit f(V) curve is shallower above \
             0.7 V, so the voltage-scaling conversion yields less)",
            pct(dual.improvement_over(&base)),
            pct(energy::equivalent_energy_saving(&dual, &base, &pm, &am, 100, nominal.volts()))
        ));
    }
    Report { id: "fig17", title: "end-to-end improvement for the two use cases", lines }
}

/// Extension (paper Section VI-A): the two NCPU cores running *different*
/// tasks concurrently — image classification on core 0, motion detection
/// on core 1 — versus time-multiplexing a heterogeneous pair.
pub fn ext_multiprogram() -> Report {
    let image = UseCase::image(2, 2, 1);
    let motion = UseCase::motion(2, 4, 1);
    let soc = SocConfig::default();
    let (a, b) = run_independent(&image, &motion, &soc);
    // Heterogeneous comparison: the single CPU+accelerator pair must run
    // the two task batches back to back.
    let h_img = Analytic.report(&Scenario::new(image, SystemConfig::Heterogeneous));
    let h_mot = Analytic.report(&Scenario::new(motion, SystemConfig::Heterogeneous));
    let serial = h_img.makespan + h_mot.makespan;
    let concurrent = a.makespan.max(b.makespan);
    let lines = vec![
        format!(
            "core 0 (image):  {} cycles, util {} while active",
            a.makespan,
            pct(a.cores[0].utilization(a.makespan))
        ),
        format!(
            "core 1 (motion): {} cycles, util {} while active (idle once its queue drains)",
            b.makespan,
            pct(b.cores[0].utilization(b.makespan))
        ),
        format!(
            "2×NCPU concurrent makespan {} vs heterogeneous back-to-back {} → {} faster",
            concurrent,
            serial,
            pct(1.0 - concurrent as f64 / serial as f64)
        ),
        "paper: the cores 'operate independently for different workload tasks' — \
         mixed workloads need no accelerator arbitration at all"
            .to_string(),
    ];
    Report { id: "ext_multiprogram", title: "two cores, two different tasks", lines }
}
