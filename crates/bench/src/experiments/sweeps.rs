//! Fig. 18, Fig. 19 and the ablation studies.
//!
//! System runs are described as [`Scenario`] values and executed through
//! the [`Engine`] trait; the `ncpu-par` fan-outs hand scenarios to the
//! pool directly.

use ncpu_bnn::{BitVec, BnnLayer, BnnModel, Topology};
use ncpu_core::SwitchPolicy;
use ncpu_nalu::{cost, normalized_error, AluTask};
use ncpu_power::AreaModel;
use ncpu_soc::{
    Analytic, Engine, EventDriven, FaultPlan, Lockstep, Scenario, SocConfig, SystemConfig,
    UseCase, DROPPED_PREDICTION,
};

use crate::context::{image_pseudo_model, pct, trained_digits};
use crate::Report;

/// Fig. 18: area saving and accuracy vs neuron cells per layer.
pub fn fig18() -> Report {
    let am = AreaModel::default();
    let mut lines = vec![format!(
        "{:>8} {:>13} {:>11}   paper",
        "neurons", "area saving", "accuracy"
    )];
    // Each neuron count trains a full model — the dominant cost of the
    // whole suite — so every sweep point is one pool task. Results come
    // back in sweep order (par_map_indexed collects by index), keeping
    // the report bytes independent of the worker count.
    let paper = [(50, 43.5, 88.6), (100, 35.7, 94.8), (200, 30.6, 96.0), (400, 22.5, 97.2)];
    let accs = ncpu_par::par_map_indexed(paper.to_vec(), |_, (n, _, _)| trained_digits(n).1);
    for ((n, p_saving, p_acc), acc) in paper.into_iter().zip(accs) {
        lines.push(format!(
            "{n:>8} {:>13} {:>11}   {p_saving}% / {p_acc}%",
            pct(am.area_saving(n)),
            pct(acc)
        ));
    }
    lines.push(
        "both trends hold: saving falls and accuracy rises with the array size \
         (our SRAM model scales the endpoints wider than the paper's)"
            .to_string(),
    );
    Report { id: "fig18", title: "area saving and accuracy vs accelerator size", lines }
}

/// Fig. 19: NALU normalized error per ALU operation and area cost vs a
/// digital implementation.
pub fn fig19() -> Report {
    let mut lines =
        vec![format!("{:<10} {:>17} {:>18}", "operation", "normalized error", "area vs digital")];
    for task in AluTask::ALL {
        let r = normalized_error(task, 600, 5);
        lines.push(format!(
            "{:<10} {:>16.1}% {:>17.1}×",
            task.name(),
            r.normalized_error_pct(),
            cost::area_ratio(task, r.macs)
        ));
    }
    lines.push(
        "paper: add/sub learn well, and/xor stay erroneous, add+sub goes near-random; \
         area 13-35× digital (add 17×, sub 15×, and 35×, xor 32×)"
            .to_string(),
    );
    Report { id: "fig19", title: "NALU learning error and hardware cost", lines }
}

/// Ablation: the zero-latency switch protocol vs naive reconfiguration.
pub fn ablation_switch() -> Report {
    let model = image_pseudo_model(100);
    let uc = UseCase::parametric(0.7, 8, model);
    // One pool task per switch policy; order fixed by the scenario list.
    let scenarios: Vec<Scenario> = [
        SocConfig::default(),
        SocConfig { switch_policy: SwitchPolicy::Naive, ..SocConfig::default() },
    ]
    .into_iter()
    .map(|soc| Scenario::new(uc.clone(), SystemConfig::Ncpu { cores: 1 }).with_soc(soc))
    .collect();
    let mut reports =
        ncpu_par::par_map_indexed(scenarios, |_, s| Analytic.report(&s)).into_iter();
    let (zero, naive) = (reports.next().expect("two configs"), reports.next().expect("two configs"));
    let lines = vec![
        format!("zero-latency switching: {} cycles", zero.makespan),
        format!(
            "naive reconfiguration:  {} cycles (+{})",
            naive.makespan,
            pct(naive.makespan as f64 / zero.makespan as f64 - 1.0)
        ),
        "the paper's Fig. 5 protocol (resident layer-1 weights, preloaded D$) \
         removes every reload stall"
            .to_string(),
    ];
    Report { id: "ablation_switch", title: "zero-latency vs naive mode switching", lines }
}

/// Ablation: layer pipelining in the accelerator (the property the
/// baseline's overlap depends on).
pub fn ablation_pipelining() -> Report {
    let model = image_pseudo_model(100);
    let uc = UseCase::parametric(0.3, 8, model);
    let scenarios: Vec<Scenario> = [
        SocConfig::default(),
        SocConfig { layer_pipelining: false, ..SocConfig::default() },
    ]
    .into_iter()
    .map(|soc| Scenario::new(uc.clone(), SystemConfig::Heterogeneous).with_soc(soc))
    .collect();
    let mut reports =
        ncpu_par::par_map_indexed(scenarios, |_, s| Analytic.report(&s)).into_iter();
    let (piped, serial) =
        (reports.next().expect("two configs"), reports.next().expect("two configs"));
    let lines = vec![
        format!("layer-pipelined accelerator: {} cycles", piped.makespan),
        format!(
            "serial (one image in array): {} cycles (+{})",
            serial.makespan,
            pct(serial.makespan as f64 / piped.makespan as f64 - 1.0)
        ),
        "at accelerator-bound workload mixes, image-level pipelining through the \
         four layers sets the baseline's throughput"
            .to_string(),
    ];
    Report { id: "ablation_pipelining", title: "accelerator layer pipelining on/off", lines }
}

/// Ablation: data locality — bytes moved across the fabric per item.
pub fn ablation_offload() -> Report {
    let model = image_pseudo_model(100);
    let uc = UseCase::parametric(0.7, 4, model);
    let scenarios: Vec<Scenario> =
        [SystemConfig::Heterogeneous, SystemConfig::Ncpu { cores: 2 }]
            .into_iter()
            .map(|sys| Scenario::new(uc.clone(), sys))
            .collect();
    let mut reports =
        ncpu_par::par_map_indexed(scenarios, |_, s| Analytic.report(&s)).into_iter();
    let (base, dual) =
        (reports.next().expect("two systems"), reports.next().expect("two systems"));
    // Per item the baseline moves the packed input CPU→L2→accelerator; the
    // NCPU only writes one result word through.
    let packed = 98u64;
    let items = uc.items().len() as u64;
    let lines = vec![
        format!(
            "baseline: {} B of input offloaded per item ({} B total) + result return",
            packed,
            packed * items
        ),
        "2×NCPU: 0 B — pre-processed data is classified where it was written \
         (the memory-reuse scheme of Fig. 4)"
            .to_string(),
        format!(
            "end-to-end: baseline {} cy vs 2×NCPU {} cy ({} faster)",
            base.makespan,
            dual.makespan,
            pct(dual.improvement_over(&base))
        ),
    ];
    Report { id: "ablation_offload", title: "offload traffic vs in-place classification", lines }
}

/// Extension (paper Section VIII-A): deeper BNNs than the 4-layer array —
/// single-core layer rollback vs NCPU cores connected in series, driven
/// through the `Deep` engine with a [`UseCase::deep`] scenario.
pub fn ext_deep() -> Report {
    use ncpu_soc::Deep;
    // An 8-layer, 100-neuron logical network.
    let topo = Topology::new(784, vec![100; 8], 10);
    let layers = (0..8)
        .map(|l| {
            let n_in = topo.layer_input(l);
            let rows: Vec<BitVec> = (0..100)
                .map(|j| BitVec::from_bools((0..n_in).map(|i| (i * 11 + j * 3 + l) % 7 < 3)))
                .collect();
            BnnLayer::new(rows, (0..100).map(|j| (j % 5) - 2).collect())
        })
        .collect();
    let deep_model = BnnModel::new(topo, layers);
    let inputs: Vec<BitVec> = (0..16)
        .map(|k| BitVec::from_bools((0..784).map(|i| (i + k * 13) % 5 < 2)))
        .collect();
    let uc = UseCase::deep(deep_model, &inputs);
    // One pool task per core count: 1 → rollback, 2 → series.
    let scenarios: Vec<Scenario> = [1usize, 2]
        .into_iter()
        .map(|cores| Scenario::new(uc.clone(), SystemConfig::Ncpu { cores }))
        .collect();
    let mut runs = ncpu_par::par_map_indexed(scenarios, |_, s| Deep.run(&s)).into_iter();
    let (rolled, rolled_rec) = runs.next().expect("two modes");
    let (series, series_rec) = runs.next().expect("two modes");
    assert_eq!(rolled.predictions, series.predictions, "modes must agree functionally");
    let (r_first, r_steady) = (
        rolled_rec.counters().get("deep.first_latency"),
        rolled_rec.counters().get("deep.steady_interval"),
    );
    let (s_first, s_steady) = (
        series_rec.counters().get("deep.first_latency"),
        series_rec.counters().get("deep.steady_interval"),
    );
    let lines = vec![
        "8-layer × 100-neuron network on the 4-layer physical array (batch 16):".to_string(),
        format!(
            "  rollback (1 core):  first image {} cy, steady interval {} cy, total {} cy",
            r_first, r_steady, rolled.makespan
        ),
        format!(
            "  series   (2 cores): first image {} cy, steady interval {} cy, total {} cy",
            s_first, s_steady, series.makespan
        ),
        format!(
            "  series throughput gain: {:.2}× (two cores hold all 8 layers resident)",
            r_steady as f64 / s_steady as f64
        ),
        "paper: 'deeper BNN … supported by rolling back the BNN operation or \
         connecting two cores in series'"
            .to_string(),
    ];
    Report { id: "ext_deep", title: "deeper BNNs: rollback vs two cores in series", lines }
}

/// Ablation (paper Section VIII-B): how much of the NCPU's win survives if
/// the baseline gets an ever-tighter CPU–accelerator interface (RoCC/ACP
/// class)? We sweep the offload interface cost down to free.
pub fn ablation_interface() -> Report {
    let model = image_pseudo_model(100);
    let uc = UseCase::parametric(0.7, 2, model);
    let mut lines = vec![format!(
        "{:<34} {:>12} {:>10}",
        "baseline interface", "baseline cy", "NCPU gain"
    )];
    let points = [
        ("DMA through L2 (default)", 4u32, 16u64),
        ("wide burst DMA (16 B/cy, 8 cy)", 16, 8),
        ("ACP-class (32 B/cy, 4 cy)", 32, 4),
        ("ideal zero-cost (RoCC-class)", u32::MAX, 0),
    ];
    // One pool task per interface point, rows collected in sweep order.
    lines.extend(ncpu_par::par_map_indexed(
        points.to_vec(),
        |_, (label, bytes_per_cycle, setup)| {
            let soc = SocConfig {
                dma_bytes_per_cycle: bytes_per_cycle,
                dma_setup_cycles: setup,
                ..SocConfig::default()
            };
            let base = Analytic.report(
                &Scenario::new(uc.clone(), SystemConfig::Heterogeneous).with_soc(soc),
            );
            let dual = Analytic.report(
                &Scenario::new(uc.clone(), SystemConfig::Ncpu { cores: 2 }).with_soc(soc),
            );
            format!(
                "{label:<34} {:>12} {:>10}",
                base.makespan,
                pct(dual.improvement_over(&base))
            )
        },
    ));
    lines.push(
        "even a free offload interface cannot fix the serialization: the paper's \
         point that tighter interfaces [14,15] address transfer cost but not core \
         under-utilization"
            .to_string(),
    );
    Report { id: "ablation_interface", title: "NCPU gain vs baseline interface cost", lines }
}

/// Validation: the fast analytic SoC scheduler against the cycle-stepped
/// lock-step co-simulation with real L2 arbitration — the same `Scenario`
/// handed to all three engines, out to four cores. The event-driven
/// engine must match the lock-step walk cycle for cycle (its column
/// exists to show the equality in the artifact, not just in tests).
pub fn ext_lockstep() -> Report {
    let model = image_pseudo_model(100);
    let uc = UseCase::parametric(0.6, 8, model);
    let mut lines = vec![format!(
        "{:<8} {:>14} {:>14} {:>12} {:>9} {:>14}",
        "cores", "analytic cy", "lockstep cy", "event cy", "delta", "L2 conflicts"
    )];
    for cores in [1usize, 2, 4] {
        let scenario = Scenario::new(uc.clone(), SystemConfig::Ncpu { cores });
        let analytic = Analytic.report(&scenario);
        let (lockstep, rec) = Lockstep.run(&scenario);
        let (event, event_rec) = EventDriven.run(&scenario);
        assert_eq!(analytic.predictions, lockstep.predictions);
        assert_eq!(event.makespan, lockstep.makespan, "event engine drifted");
        assert_eq!(event.predictions, lockstep.predictions, "event engine drifted");
        assert_eq!(
            event_rec.counters().to_json(),
            rec.counters().to_json(),
            "event engine counters drifted"
        );
        lines.push(format!(
            "{cores:<8} {:>14} {:>14} {:>12} {:>8.2}% {:>14}",
            analytic.makespan,
            lockstep.makespan,
            event.makespan,
            (lockstep.makespan as f64 / analytic.makespan as f64 - 1.0) * 100.0,
            rec.counters().get("soc.l2_conflict_cycles")
        ));
    }
    lines.push(
        "cycle-level co-simulation confirms the analytic scheduler at every core \
         count: identical classifications, sub-percent makespans, and near-zero \
         shared-L2 contention (the memory-reuse scheme keeps traffic local); the \
         event-driven engine reproduces the lock-step numbers exactly"
            .to_string(),
    );
    Report { id: "ext_lockstep", title: "analytic scheduler vs lock-step co-simulation", lines }
}

/// Reliability vs supply voltage: one seeded fault plan priced by the
/// analytic engine across the DVFS grid. The SRAM soft-error rate
/// scales quadratically with the voltage deficit below nominal
/// (`ncpu-fault`'s model), so the same plan that is nearly silent at
/// 1.0 V floods the recovery layer at 0.6 V — the sweep shows the
/// injection, retry, and drop counts the policy absorbs, and what the
/// recovery traffic does to the makespan.
pub fn ext_fault() -> Report {
    // The staged image path: faults need bytes on the fabric to corrupt
    // (a parametric item stages nothing, so only hangs could fire).
    let uc = UseCase::image(8, 2, 1);
    let plan = FaultPlan {
        seed: 11,
        sram_flip_ppm: 20_000,
        dma_stall_ppm: 30_000,
        dma_stall_cycles: 48,
        dma_truncate_ppm: 20_000,
        core_hang_ppm: 10_000,
        watchdog_cycles: 20_000_000,
        max_retries: 2,
        backoff_cycles: 32,
        quarantine_after: 4,
    };
    let mut lines = vec![format!(
        "{:>6} {:>7} {:>7} {:>7} {:>7} {:>8} {:>6} {:>14}",
        "volts", "flips", "dma", "hangs", "retries", "dropped", "good", "makespan cy"
    )];
    let mut flips_at = Vec::new();
    for tenths in [10u32, 9, 8, 7, 6] {
        let volts = f64::from(tenths) / 10.0;
        let scenario = Scenario::new(uc.clone(), SystemConfig::Ncpu { cores: 4 })
            .with_operating_point(volts)
            .with_faults(plan);
        let (report, rec) = Analytic.run(&scenario);
        let flips = rec.counters().get("fault.injected.sram_flip");
        flips_at.push(flips);
        let good = report.predictions.iter().filter(|&&p| p != DROPPED_PREDICTION).count();
        lines.push(format!(
            "{volts:>6.1} {flips:>7} {:>7} {:>7} {:>7} {:>8} {good:>5}/{} {:>14}",
            rec.counters().get("fault.injected.dma_stall")
                + rec.counters().get("fault.injected.dma_truncate"),
            rec.counters().get("fault.injected.core_hang"),
            rec.counters().get("fault.retries"),
            rec.counters().get("fault.items_dropped"),
            report.predictions.len(),
            report.makespan,
        ));
    }
    assert!(
        flips_at.last() >= flips_at.first(),
        "the soft-error model must not improve as the supply drops"
    );
    lines.push(
        "the voltage deficit scales the SRAM upset rate quadratically: the plan that \
         barely registers at nominal supply corrupts half the dispatches by 0.6 V, \
         and a single watchdog-caught hang dominates the makespan; detection \
         (parity at delivery, watchdog for hangs) keeps every surviving \
         classification correct — reliability is the price DVFS pays, and the \
         recovery layer is what converts it from wrong answers into latency"
            .to_string(),
    );
    Report { id: "ext_fault", title: "reliability vs supply voltage under fault injection", lines }
}
