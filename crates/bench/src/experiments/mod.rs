//! One function per paper table/figure, plus the ablation studies.

mod endtoend;
mod power_figs;
mod sweeps;
mod tables;

pub use endtoend::{ext_multiprogram, fig01, fig13, fig14, fig15, fig16, fig17, table4};
pub use power_figs::{fig09, fig10, fig11, fig12};
pub use sweeps::{
    ablation_interface, ablation_offload, ablation_pipelining, ablation_switch, ext_deep,
    ext_fault, ext_lockstep, fig18, fig19,
};
pub use tables::{ext_realtime, table1, table2, table3};

use crate::Report;

/// Experiment ids in paper order.
pub const ALL_IDS: [&str; 25] = [
    "fig01", "table1", "fig09", "table2", "table3", "fig10", "fig11", "fig12", "fig13",
    "fig14", "fig15", "fig16", "table4", "fig17", "fig18", "fig19", "ablation_switch",
    "ablation_pipelining", "ablation_offload", "ablation_interface", "ext_deep",
    "ext_multiprogram", "ext_realtime", "ext_lockstep", "ext_fault",
];

/// Runs one experiment by id.
pub fn run_by_id(id: &str) -> Option<Report> {
    Some(match id {
        "fig01" => fig01(),
        "table1" => table1(),
        "fig09" => fig09(),
        "table2" => table2(),
        "table3" => table3(),
        "fig10" => fig10(),
        "fig11" => fig11(),
        "fig12" => fig12(),
        "fig13" => fig13(),
        "fig14" => fig14(),
        "fig15" => fig15(),
        "fig16" => fig16(),
        "table4" => table4(),
        "fig17" => fig17(),
        "fig18" => fig18(),
        "fig19" => fig19(),
        "ablation_switch" => ablation_switch(),
        "ablation_pipelining" => ablation_pipelining(),
        "ablation_offload" => ablation_offload(),
        "ablation_interface" => ablation_interface(),
        "ext_deep" => ext_deep(),
        "ext_multiprogram" => ext_multiprogram(),
        "ext_realtime" => ext_realtime(),
        "ext_lockstep" => ext_lockstep(),
        "ext_fault" => ext_fault(),
        _ => return None,
    })
}
