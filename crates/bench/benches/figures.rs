//! `cargo bench` entry point that regenerates the paper's fast tables and
//! figures (the training-heavy ones — table1/table3/fig18 — run via
//! `cargo run --release -p ncpu-bench --bin <id>`), reporting the wall
//! time of each regeneration. Timings are also written to
//! `BENCH_figures.json` via `ncpu_testkit::bench` so runs can be diffed.

use std::time::Instant;

use ncpu_testkit::bench::Bench;

fn main() {
    // Respect `cargo bench -- <filter>`.
    let filter: Vec<String> = std::env::args().skip(1).filter(|a| !a.starts_with('-')).collect();
    let fast = [
        "fig01", "fig09", "table2", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
        "fig16", "table4", "fig17", "fig19", "ablation_switch", "ablation_pipelining",
        "ablation_offload", "ablation_interface", "ext_deep", "ext_realtime", "ext_lockstep",
    ];
    let mut bench = Bench::new("figures");
    for id in fast {
        if !filter.is_empty() && !filter.iter().any(|f| id.contains(f.as_str())) {
            continue;
        }
        let start = Instant::now();
        let report = ncpu_bench::experiments::run_by_id(id).expect("known id");
        let elapsed = start.elapsed();
        println!("{report}");
        bench.record_once(id, elapsed);
        println!();
    }
    bench.finish();
}
