//! Parallel-speedup benchmark for the `ncpu-par` execution layer.
//!
//! Regenerates a set of paper figures with `NCPU_THREADS=1` and
//! `NCPU_THREADS=4`, records both wall-clock times into
//! `BENCH_parallel.json`, and — the determinism contract — asserts that
//! the concatenated report bytes are identical at both thread counts.
//!
//! The recorded names carry the host's `available_parallelism` (e.g.
//! `figures/threads4_host1`): on a single-hardware-thread machine the
//! 4-worker run cannot be faster, and the artifact says so instead of
//! pretending. Speedup = `threads1` median over `threads4` median.
//!
//! By default the training-heavy figures (table1/table3/fig18) are
//! skipped so the bench stays in seconds; set `NCPU_BENCH_FULL=1` for
//! the full `paper` binary id list.

use std::time::Instant;

use ncpu_obs::CycleHistogram;
use ncpu_soc::{Engine, EventDriven, Scenario, SystemConfig, UseCase};
use ncpu_testkit::bench::Bench;

/// The parallelized fast figures: every one fans its sweep/config grid
/// out through the pool, so together they exercise each integration
/// point of `ncpu_par` in the bench layer.
const FAST_PARALLEL_IDS: [&str; 8] = [
    "fig09",
    "fig12",
    "fig13",
    "fig14",
    "ablation_switch",
    "ablation_pipelining",
    "ablation_offload",
    "ablation_interface",
];

fn regenerate(ids: &[&str]) -> String {
    let mut out = String::new();
    for id in ids {
        let report = ncpu_bench::experiments::run_by_id(id).expect("known id");
        out.push_str(&report.to_string());
        out.push('\n');
    }
    out
}

/// Merges every scenario's `item.latency_cycles` histogram into one
/// fleet-wide histogram via [`ncpu_par::Pool::par_map_fold`]: the map
/// (one engine run per scenario) fans out across workers, the merge
/// folds in scenario index order. Returns the merged histogram's JSON.
fn fleet_latency_json(workers: usize) -> String {
    let scenarios: Vec<Scenario> = (1..=4)
        .map(|cores| {
            Scenario::new(UseCase::image(8, 30, 10), SystemConfig::Ncpu { cores })
        })
        .collect();
    let pool = ncpu_par::Pool::with_workers(workers);
    let fleet = pool.par_map_fold(
        scenarios,
        |_, s| {
            let (report, _) = EventDriven.run(&s);
            report.metrics.get("item.latency_cycles").cloned().unwrap_or_default()
        },
        CycleHistogram::new(),
        |mut acc, h| {
            acc.merge(&h);
            acc
        },
    );
    assert!(!fleet.is_empty(), "fleet histogram must observe every item");
    fleet.to_json()
}

fn main() {
    let full = std::env::var("NCPU_BENCH_FULL").is_ok_and(|v| v == "1");
    let ids: Vec<&str> = if full {
        ncpu_bench::experiments::ALL_IDS.to_vec()
    } else {
        FAST_PARALLEL_IDS.to_vec()
    };
    let host = ncpu_par::host_parallelism();
    let mut bench = Bench::new("parallel");
    let mut outputs: Vec<(usize, String)> = Vec::new();
    for threads in [1usize, 4] {
        std::env::set_var(ncpu_par::THREADS_ENV, threads.to_string());
        let start = Instant::now();
        let text = regenerate(&ids);
        bench.record_once(&format!("figures/threads{threads}_host{host}"), start.elapsed());
        outputs.push((threads, text));
    }
    std::env::remove_var(ncpu_par::THREADS_ENV);

    let (t1, t4) = (&bench.results()[0], &bench.results()[1]);
    println!(
        "parallel/speedup: {:.2}x at 4 workers ({} figure ids, {host} host hardware threads)",
        t1.median_ns / t4.median_ns,
        ids.len()
    );
    for window in outputs.windows(2) {
        let (ta, a) = &window[0];
        let (tb, b) = &window[1];
        assert_eq!(
            a, b,
            "figure bytes differ between NCPU_THREADS={ta} and NCPU_THREADS={tb}: \
             the determinism contract is broken"
        );
    }
    println!("parallel/determinism: outputs byte-identical across thread counts");

    // The ordered-fold reduction: a fleet latency histogram merged across
    // scenarios must be byte-identical for any worker count.
    let mut fleet_jsons: Vec<(usize, String)> = Vec::new();
    for workers in [1usize, 4] {
        let start = Instant::now();
        let json = fleet_latency_json(workers);
        bench.record_once(&format!("fleet_hist/workers{workers}_host{host}"), start.elapsed());
        fleet_jsons.push((workers, json));
    }
    assert_eq!(
        fleet_jsons[0].1, fleet_jsons[1].1,
        "fleet latency histogram differs between 1 and 4 workers: \
         the ordered-fold determinism contract is broken"
    );
    println!("parallel/fleet_hist: merged latency histogram byte-identical across worker counts");
    bench.finish();
}
