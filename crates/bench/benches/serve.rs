//! Fleet-service benchmark: cold vs warm serving of a 16-scenario
//! sweep through the full line protocol, at 1 and 4 workers. Writes
//! `BENCH_serve.json`.
//!
//! * `cold_*` rows build a fresh fleet per iteration and pay spec
//!   parsing, scenario construction, and simulation for all 16
//!   scenarios (`elements = 16`, so `elems_per_sec` is cold
//!   scenarios/second).
//! * `warm_*` rows replay the identical request lines against the
//!   warmed fleet: every request is a content-addressed cache hit
//!   serving the exact cached bytes.
//! * `warm_p50` / `warm_p99` are single-request round-trip latencies
//!   (one line in, one line out) over the warm cache, recorded through
//!   the deterministic `CycleHistogram`.
//!
//! The committed artifact must show warm throughput at least 10x cold —
//! that is the service's reason to exist — so this harness asserts it.

use std::time::Instant;

use ncpu_obs::CycleHistogram;
use ncpu_serve::{serve_lines, Fleet, ServeConfig};
use ncpu_testkit::bench::Bench;

/// 16 distinct steady-state scenarios (4 fractions x 2 batches x 2 core
/// counts), as protocol lines. Small enough to keep the cold side
/// tractable under `NCPU_BENCH_SAMPLES`, large enough to exercise the
/// batch planner.
fn sweep_lines() -> String {
    let mut lines = String::new();
    for frac in [2, 4, 6, 8] {
        for batch in [2, 4] {
            for cores in [1, 2] {
                lines.push_str(&format!(
                    "{{\"cpu_fraction\":0.{frac},\"batch\":{batch},\"cores\":{cores},\"model_input\":64}}\n"
                ));
            }
        }
    }
    lines
}

const SWEEP: usize = 16;

fn serve_all(fleet: &mut Fleet, input: &str) -> usize {
    let mut out = Vec::new();
    serve_lines(fleet, input.as_bytes(), &mut out, &ServeConfig::default())
        .expect("in-memory serve cannot fail");
    out.len()
}

fn main() {
    let mut bench = Bench::new("serve");
    let lines = sweep_lines();
    assert_eq!(lines.lines().count(), SWEEP);

    let mut medians: Vec<(String, f64)> = Vec::new();
    for workers in [1usize, 4] {
        bench.throughput(SWEEP as u64);
        bench.bench(&format!("cold_b16_w{workers}"), || {
            let mut fleet = Fleet::new(workers, 1024);
            serve_all(&mut fleet, &lines)
        });

        let mut warm = Fleet::new(workers, 1024);
        serve_all(&mut warm, &lines);
        bench.throughput(SWEEP as u64);
        bench.bench(&format!("warm_b16_w{workers}"), || serve_all(&mut warm, &lines));

        let results = bench.results();
        let (cold, hot) = (&results[results.len() - 2], &results[results.len() - 1]);
        println!(
            "serve w{workers}: cold {:.0} scen/s, warm {:.0} scen/s ({:.0}x)",
            1e9 * SWEEP as f64 / cold.median_ns,
            1e9 * SWEEP as f64 / hot.median_ns,
            cold.median_ns / hot.median_ns
        );
        medians.push((format!("w{workers}"), cold.median_ns / hot.median_ns));
    }

    // Single-request round-trip latency over the warm cache.
    let mut warm = Fleet::new(1, 1024);
    serve_all(&mut warm, &lines);
    let requests: Vec<&str> = lines.lines().collect();
    let mut hist = CycleHistogram::new();
    for round in 0..64 {
        let one = format!("{}\n", requests[round % SWEEP]);
        let start = Instant::now();
        serve_all(&mut warm, &one);
        hist.record(start.elapsed().as_nanos() as u64);
    }
    bench.record_once("warm_p50", std::time::Duration::from_nanos(hist.p50()));
    bench.record_once("warm_p99", std::time::Duration::from_nanos(hist.p99()));

    bench.finish();

    for (tag, ratio) in &medians {
        assert!(
            *ratio >= 10.0,
            "{tag}: warm serving must be >=10x cold (content-addressed cache), got {ratio:.1}x"
        );
    }
}
