//! Topology sweep: {homogeneous 4R, big.LITTLE 1R+3R@0.7V, BNN-heavy
//! 2R+2B} × {static, work-stealing} on end-to-end workloads, reporting
//! area / energy / makespan into `BENCH_topology.json`.
//!
//! Unlike the wall-clock suites, every row here is a *deterministic
//! model metric* recorded through `record_once` (cycles, nanojoules,
//! square micrometres encoded as nanoseconds), so the committed
//! baseline is host-independent and the `bench_diff` gate pins the
//! model itself rather than machine noise.
//!
//! Before any row is recorded, each (workload, topology, scheduler)
//! cell is run through both twin engines and checked for report
//! equality — a release-mode heterogeneous-fleet equivalence smoke.

use std::time::Duration;

use ncpu_power::{AreaModel, PowerModel};
use ncpu_soc::energy::run_energy_uj_topo;
use ncpu_soc::topology::{CoreRole, CoreSpec, SchedulerKind, Topology};
use ncpu_soc::{
    pseudo_model, Engine, EventDriven, Lockstep, Scenario, SystemConfig, UseCase, L2_BYTES,
};
use ncpu_testkit::bench::Bench;

/// Neuron count fed to the area/power models, matching the other
/// experiment harnesses.
const NEURONS: usize = 100;

fn topologies() -> Vec<(&'static str, Topology)> {
    let homogeneous = Topology::homogeneous(4);

    // One nominal-voltage big core with its own wide L2 bank, three
    // 0.7 V littles sharing a narrow bank.
    let mut specs = vec![CoreSpec::reconfigurable(); 4];
    for spec in specs.iter_mut().skip(1) {
        spec.operating_point = Some(0.7);
        spec.bank = 1;
    }
    let biglittle =
        Topology::from_specs(specs, vec![3 * L2_BYTES / 4, L2_BYTES / 4], SchedulerKind::Static)
            .expect("big.LITTLE topology is structural");

    // Two reconfigurable cores plus two fixed BNN arrays (idle in item
    // engines: area/leakage only).
    let mut specs = vec![CoreSpec::reconfigurable(); 4];
    specs[2].role = CoreRole::BnnOnly;
    specs[3].role = CoreRole::BnnOnly;
    let bnnheavy = Topology::from_specs(specs, vec![L2_BYTES], SchedulerKind::Static)
        .expect("BNN-heavy topology is structural");

    vec![("homogeneous_4r", homogeneous), ("biglittle_1p3", biglittle), ("bnnheavy_2p2", bnnheavy)]
}

fn fleet_area_mm2(am: &AreaModel, topo: &Topology) -> f64 {
    topo.specs()
        .iter()
        .map(|spec| match spec.role {
            CoreRole::Reconfigurable => am.ncpu_core(NEURONS).total_mm2(),
            CoreRole::BnnOnly => am.bnn_core(NEURONS).total_mm2(),
            CoreRole::CpuOnly => am.cpu_core().total_mm2(),
        })
        .sum()
}

fn main() {
    let mut bench = Bench::new("topology");
    let pm = PowerModel::default();
    let am = AreaModel::default();
    let workloads: Vec<(&str, UseCase)> = vec![
        ("parametric_b48", UseCase::parametric(0.6, 48, pseudo_model(256, 20, 10))),
        ("image_b8", UseCase::image(8, 2, 1)),
    ];

    // (workload, topology, scheduler) -> (makespan, energy_uj)
    let mut cells: Vec<(String, u64, f64)> = Vec::new();
    for (wl, uc) in &workloads {
        for (tname, topo) in topologies() {
            for sched in [SchedulerKind::Static, SchedulerKind::WorkStealing] {
                let topo = topo.clone().with_scheduler(sched);
                let scenario = Scenario::new(uc.clone(), SystemConfig::Ncpu { cores: 4 })
                    .with_topology(topo.clone());

                // Twin-engine equivalence gate on the heterogeneous
                // fleet before anything is recorded.
                let lockstep = Lockstep.report(&scenario);
                let event = EventDriven.report(&scenario);
                assert_eq!(
                    format!("{event:?}").replace("(event)", "(engine)"),
                    format!("{lockstep:?}").replace("(lockstep)", "(engine)"),
                    "{wl}/{tname}: engines diverged on a heterogeneous fleet"
                );

                let sched_tag = match sched {
                    SchedulerKind::Static => "static",
                    SchedulerKind::WorkStealing => "ws",
                };
                let cell = format!("{wl}/{tname}_{sched_tag}");
                let energy_uj = run_energy_uj_topo(&event, &pm, &am, NEURONS, 1.0, &topo);
                bench.record_once(
                    &format!("{cell}/makespan_cycles"),
                    Duration::from_nanos(event.makespan),
                );
                bench.record_once(
                    &format!("{cell}/energy_nj"),
                    Duration::from_nanos((energy_uj * 1.0e3).round() as u64),
                );
                bench.record_once(
                    &format!("{cell}/area_um2"),
                    Duration::from_nanos((fleet_area_mm2(&am, &topo) * 1.0e6).round() as u64),
                );
                println!(
                    "{cell}: makespan {} cycles, energy {energy_uj:.1} uJ, area {:.2} mm2 [{}]",
                    event.makespan,
                    fleet_area_mm2(&am, &topo),
                    topo.label()
                );
                cells.push((cell, event.makespan, energy_uj));
            }
        }
    }
    bench.finish();

    // The crossover this artifact exists to document: for each
    // workload, the 1+3 big.LITTLE fleet (statically scheduled, so the
    // plan — and therefore the cycle makespan — is identical to the
    // homogeneous fleet's) runs at strictly lower energy because three
    // cores integrate at 0.7 V.
    let find = |name: &str| {
        cells.iter().find(|(n, _, _)| n == name).unwrap_or_else(|| panic!("row {name} missing"))
    };
    let mut crossed = false;
    for (wl, _) in &workloads {
        let homog = find(&format!("{wl}/homogeneous_4r_static"));
        let bl = find(&format!("{wl}/biglittle_1p3_static"));
        assert_eq!(
            bl.1, homog.1,
            "{wl}: static big.LITTLE must match the homogeneous plan cycle-for-cycle"
        );
        if bl.2 < homog.2 {
            println!(
                "{wl}: big.LITTLE crossover — same {} cycle makespan at {:.1} uJ vs {:.1} uJ \
                 homogeneous ({:.0}% energy saving)",
                homog.1,
                bl.2,
                homog.2,
                100.0 * (1.0 - bl.2 / homog.2)
            );
            crossed = true;
        }
    }
    assert!(crossed, "no mixed topology beat homogeneous on energy or makespan");
}
