//! Criterion micro-benchmarks of the simulator substrate itself: how fast
//! the reproduction simulates, not what the paper measures.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ncpu_accel::{AccelConfig, Accelerator};
use ncpu_bnn::BitVec;
use ncpu_isa::{asm, decode};
use ncpu_pipeline::{FlatMem, Pipeline};

fn bench_isa(c: &mut Criterion) {
    let mut g = c.benchmark_group("isa");
    let words = asm::assemble(
        "loop: addi t0, t0, 1
               mul t1, t0, t0
               lw a0, 0(sp)
               beq a0, t1, loop
               ebreak",
    )
    .unwrap();
    g.throughput(Throughput::Elements(words.len() as u64));
    g.bench_function("decode", |b| {
        b.iter(|| {
            for &w in &words {
                black_box(decode(black_box(w)).unwrap());
            }
        })
    });
    g.bench_function("assemble_small_program", |b| {
        b.iter(|| asm::assemble(black_box("li t0, 100\nloop: addi t0, t0, -1\nbnez t0, loop\nebreak")))
    });
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    let program = ncpu_workloads::spin::spin_program(100_000);
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("cycles_per_second", |b| {
        b.iter(|| {
            let mut cpu = Pipeline::new(program.clone(), FlatMem::new(64));
            cpu.run(1_000_000).unwrap()
        })
    });
    g.finish();
}

fn bench_bnn(c: &mut Criterion) {
    let mut g = c.benchmark_group("bnn");
    let a = BitVec::from_bools((0..784).map(|i| i % 3 == 0));
    let b2 = BitVec::from_bools((0..784).map(|i| i % 5 == 0));
    g.bench_function("dot_784", |b| b.iter(|| black_box(a.dot(&b2))));
    let model = ncpu_bench::context::image_pseudo_model(100);
    g.bench_function("reference_inference", |b| {
        b.iter(|| black_box(model.classify(&a)))
    });
    let mut accel = Accelerator::new(model.clone(), AccelConfig::default());
    g.bench_function("accelerator_inference", |b| b.iter(|| accel.infer(&a)));
    g.finish();
}

criterion_group!(benches, bench_isa, bench_pipeline, bench_bnn);
criterion_main!(benches);
