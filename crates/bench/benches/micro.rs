//! Micro-benchmarks of the simulator substrate itself: how fast the
//! reproduction simulates, not what the paper measures. Runs on the
//! workspace's own `ncpu_testkit::bench` harness (no criterion); the
//! report lands in `BENCH_micro.json`.

use std::hint::black_box;

use ncpu_accel::{AccelConfig, Accelerator};
use ncpu_bnn::BitVec;
use ncpu_isa::{asm, decode};
use ncpu_pipeline::{FlatMem, Pipeline};
use ncpu_testkit::bench::Bench;

fn bench_isa(b: &mut Bench) {
    let words = asm::assemble(
        "loop: addi t0, t0, 1
               mul t1, t0, t0
               lw a0, 0(sp)
               beq a0, t1, loop
               ebreak",
    )
    .unwrap();
    b.throughput(words.len() as u64);
    b.bench("isa/decode", || {
        for &w in &words {
            black_box(decode(black_box(w)).unwrap());
        }
    });
    b.bench("isa/assemble_small_program", || {
        asm::assemble(black_box("li t0, 100\nloop: addi t0, t0, -1\nbnez t0, loop\nebreak"))
    });
}

fn bench_pipeline(b: &mut Bench) {
    let program = ncpu_workloads::spin::spin_program(100_000);
    b.throughput(100_000);
    b.bench("pipeline/cycles_per_second", || {
        let mut cpu = Pipeline::new(program.clone(), FlatMem::new(64));
        cpu.run(1_000_000).unwrap()
    });
}

fn bench_bnn(b: &mut Bench) {
    let a = BitVec::from_bools((0..784).map(|i| i % 3 == 0));
    let b2 = BitVec::from_bools((0..784).map(|i| i % 5 == 0));
    b.bench("bnn/dot_784", || black_box(a.dot(&b2)));
    let model = ncpu_bench::context::image_pseudo_model(100);
    b.bench("bnn/reference_inference", || black_box(model.classify(&a)));
    let mut accel = Accelerator::new(model.clone(), AccelConfig::default());
    b.bench("bnn/accelerator_inference", move || accel.infer(&a));
}

fn bench_endtoend(b: &mut Bench) {
    let model = ncpu_bench::context::image_pseudo_model(100);
    let uc = ncpu_soc::UseCase::parametric(0.7, 4, model);
    let soc = ncpu_soc::SocConfig::default();
    b.bench("endtoend/heterogeneous_baseline", || {
        black_box(ncpu_soc::run(&uc, ncpu_soc::SystemConfig::Heterogeneous, &soc))
    });
    b.bench("endtoend/dual_ncpu", || {
        black_box(ncpu_soc::run(&uc, ncpu_soc::SystemConfig::Ncpu { cores: 2 }, &soc))
    });
}

fn main() {
    // Respect `cargo bench -- <filter>` the way criterion used to.
    let filter: Vec<String> = std::env::args().skip(1).filter(|a| !a.starts_with('-')).collect();
    let wants = |group: &str| filter.is_empty() || filter.iter().any(|f| group.contains(f.as_str()));
    let mut b = Bench::new("micro");
    if wants("isa") {
        bench_isa(&mut b);
    }
    if wants("pipeline") {
        bench_pipeline(&mut b);
    }
    if wants("bnn") {
        bench_bnn(&mut b);
    }
    if wants("endtoend") {
        bench_endtoend(&mut b);
    }
    b.finish();
}
