//! Engine benchmark: the event-driven scheduler against the per-cycle
//! lock-step walk, on the same end-to-end scenarios. Writes
//! `BENCH_event.json` with one `<group>_lockstep` / `<group>_event`
//! pair per scenario; the speedup column is the ratio of the medians.
//!
//! Every pair is also checked for report equality before timing — a
//! benchmark of a divergent engine would be meaningless — so this
//! doubles as a release-mode equivalence smoke.

use ncpu_soc::{pseudo_model, Engine, EventDriven, Lockstep, Scenario, SystemConfig, UseCase};
use ncpu_testkit::bench::Bench;

fn scenarios() -> Vec<(&'static str, Scenario)> {
    vec![
        // Steady-state heavy: a long batch where almost every item after
        // the first replays from the memo cache.
        (
            "endtoend/parametric_b128_2core",
            Scenario::new(
                UseCase::parametric(0.8, 128, pseudo_model(784, 30, 10)),
                SystemConfig::Ncpu { cores: 2 },
            ),
        ),
        // Staged-DMA path with a trained model (image pipeline).
        (
            "endtoend/image_2core",
            Scenario::new(UseCase::image(4, 2, 1), SystemConfig::Ncpu { cores: 2 }),
        ),
        // The N-core generalization under shared-L2 contention.
        (
            "smoke/parametric_b16_4core",
            Scenario::new(
                UseCase::parametric(0.5, 16, pseudo_model(256, 20, 10)),
                SystemConfig::Ncpu { cores: 4 },
            ),
        ),
    ]
}

fn main() {
    let mut bench = Bench::new("event");
    let mut speedups = Vec::new();
    for (group, scenario) in scenarios() {
        // Equivalence gate first (also warms both engines' code paths).
        let lockstep = Lockstep.report(&scenario);
        let event = EventDriven.report(&scenario);
        assert_eq!(
            format!("{:?}", event).replace("(event)", "(engine)"),
            format!("{:?}", lockstep).replace("(lockstep)", "(engine)"),
            "{group}: engines diverged — benchmark aborted"
        );

        // Each run processes the full batch, so the throughput column
        // (`elements` / `elems_per_sec`) is items per engine invocation.
        let items = scenario.usecase().items().len() as u64;
        bench.throughput(items);
        bench.bench(&format!("{group}_lockstep"), || Lockstep.report(&scenario));
        bench.throughput(items);
        bench.bench(&format!("{group}_event"), || EventDriven.report(&scenario));
        let results = bench.results();
        let (ls, ev) = (&results[results.len() - 2], &results[results.len() - 1]);
        let speedup = ls.median_ns / ev.median_ns;
        println!("{group}: event engine {speedup:.1}x faster than lockstep");
        speedups.push((group, speedup));
    }
    bench.finish();
    // The headline claim this artifact exists to back: jumping between
    // events plus steady-state replay is an order-of-magnitude win on at
    // least one end-to-end group.
    let best = speedups
        .iter()
        .filter(|(g, _)| g.starts_with("endtoend/"))
        .map(|&(_, s)| s)
        .fold(0.0f64, f64::max);
    assert!(best >= 5.0, "expected >=5x on an endtoend group, best was {best:.1}x");
}
